"""Cluster cost model (paper sections 3 and 6).

Published anchors: each GigE adapter cost $140, $420 of networking per
node; Myrinet/Infiniband ports ran ~$1000 (section 3).  The node base
price reflects a 2003-era single-P4-Xeon server.  Table 1 reports
estimated $/Mflops = per-node cost / (per-node Gflops x 1000), "based
on the costs at the time of the GigE cluster installation".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ClusterCosts:
    """Per-node dollar costs of one cluster flavor."""

    node_base: float
    network_per_node: float
    label: str = ""

    @property
    def per_node(self) -> float:
        return self.node_base + self.network_per_node


#: 2.67 GHz P4 Xeon node, three dual-port GigE adapters at $140 each
#: ("a total expenditure of $420 for networking components on a
#: single node", section 3).
GIGE_MESH_COSTS = ClusterCosts(node_base=1400.0,
                               network_per_node=3 * 140.0,
                               label="GigE mesh")

#: 2.0 GHz P4 Xeon node + Myrinet LaNai9 port incl. switch share.
MYRINET_COSTS = ClusterCosts(node_base=1400.0,
                             network_per_node=1000.0,
                             label="Myrinet switched")


def dollars_per_mflops(costs: ClusterCosts, gflops_per_node: float) -> float:
    """Estimated $/Mflops for a cluster at a measured per-node rate."""
    if gflops_per_node <= 0:
        raise ConfigurationError(
            f"gflops must be positive, got {gflops_per_node}"
        )
    return costs.per_node / (gflops_per_node * 1000.0)
