"""One PDES shard: a slab of the mesh under its own event loop.

A :class:`ShardRuntime` owns one :class:`~repro.sim.Simulator` holding
the hosts, NICs and intra-shard links of the ranks its
:class:`~repro.topology.partition.ShardPlan` slab assigns to it.  Cut
links are :class:`~repro.hw.link.BoundaryLink` proxies that commit
departing frames into an egress outbox at serialization *start*, which
is what makes the conservative window sound: a frame committed at
``t`` arrives no earlier than ``t + min_wire_latency``, so everything
committed inside a window lands at or after the window's end barrier.

The same class backs both execution styles — in-process shards (the
``nshards=1`` case *is* the sequential reference engine) and
subprocess workers driven over a pipe (:mod:`repro.pdes.worker`) — so
bit-identity between them is identity of one code path, not a
maintained invariant between two.

Window protocol (driven by :mod:`repro.pdes.runner`):

* ``peek()`` — next local event time (inf when drained);
* ``run_window(until, ingress, notifies)`` — apply deferred channel
  notifies, inject cross-shard frame arrivals, run to ``until``; returns
  ``(egress, notifies_out, peek)``;
* ``finish()`` — after global quiescence: per-rank results, event
  counts and the shard's flight recorder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import fastpath
from repro.cluster.builder import MeshCluster
from repro.cluster.process_api import WORLD_CONTEXT
from repro.core.engine import ConnectionManager, MessagingEngine
from repro.errors import DeadlockError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group
from repro.pdes.workloads import get_workload, tree_edges
from repro.sim import Simulator
from repro.sim.events import Callback
from repro.topology.partition import make_shard_plan
from repro.topology.torus import Torus


class ShardConnectionManager(ConnectionManager):
    """Connection manager that defers cross-shard notifies.

    Notifies to local ranks stay synchronous (reference semantics);
    notifies to remote ranks queue in ``notify_outbox`` and cross at
    the next window barrier.  That delay is timing-neutral because
    every declared edge is pre-opened from both sides at t=0 (see
    :meth:`ShardRuntime._driver`), so by the time any notify is
    delivered the target channel already exists and
    ``open_channel_from`` does nothing.  A notify that *did* trigger an
    active connect on arrival would be zero-lookahead cross-shard
    influence — unschedulable under a conservative window — which is
    why the pre-open is a hard requirement, not an optimization.
    """

    def __init__(self, local_ranks, notify_outbox: list) -> None:
        super().__init__()
        self._local = frozenset(local_ranks)
        self.notify_outbox = notify_outbox

    def notify(self, from_rank: int, to_rank: int) -> None:
        if to_rank in self._local:
            super().notify(from_rank, to_rank)
        else:
            self.notify_outbox.append((from_rank, to_rank))


class ShardRuntime:
    """Build and drive one shard from a picklable spec dict.

    Spec keys: ``dims``, ``wrap``, ``nshards``, ``shard_id``,
    ``workload``, ``kwargs``, ``fast``, ``observe``,
    ``metrics_interval``.
    """

    def __init__(self, spec: dict) -> None:
        # Workers inherit nothing under the spawn start method; pin the
        # scheduler mode before the Simulator samples it so every shard
        # (and the sequential reference) runs the same mode.
        fastpath.set_enabled(bool(spec["fast"]))
        torus = Torus(tuple(spec["dims"]), wrap=spec["wrap"])
        self.torus = torus
        self.plan = make_shard_plan(torus, spec["nshards"])
        self.shard_id = int(spec["shard_id"])
        self.workload = get_workload(spec["workload"])
        self.kwargs = dict(spec.get("kwargs") or {})
        self.sim = Simulator()
        self.cluster = MeshCluster(torus, sim=self.sim,
                                   shard_plan=self.plan,
                                   shard_id=self.shard_id)
        self.cluster.attach_via()
        if spec.get("observe"):
            self.cluster.observability(
                metrics_interval=spec.get("metrics_interval", 50.0))
        self.local_ranks = list(self.plan.local_ranks(self.shard_id))
        self.notify_outbox: List[tuple] = []
        self.manager = ShardConnectionManager(self.local_ranks,
                                              self.notify_outbox)
        self.engines: Dict[int, MessagingEngine] = {}
        self.comms: Dict[int, Communicator] = {}
        world = Group(range(torus.size))
        for rank in self.local_ranks:
            node = self.cluster.nodes[rank]
            engine = MessagingEngine(node.via, self.manager)
            self.engines[rank] = engine
            self.comms[rank] = Communicator(engine, world, WORLD_CONTEXT,
                                            torus=torus)
        if self.workload.setup is not None:
            self.workload.setup(self.cluster, self.comms)
        edges = set(self.workload.edges(torus))
        edges.update(tree_edges(torus))
        self._edges = sorted(edges)
        self.results: Dict[int, object] = {}
        self._drivers = [
            self.sim.spawn(self._driver(rank), name=f"pdes-rank{rank}")
            for rank in self.local_ranks
        ]

    def _driver(self, rank: int):
        """Per-rank SPMD shell: pre-open every edge, sync, run.

        Both endpoints of every declared edge create their channel side
        concurrently at t=0 — the lower rank dials, the higher waits
        passively.  After this instant every channel the program will
        ever use already exists (at least as a pending handshake), so
        ``open_channel_from`` is a no-op for the rest of the run and a
        channel-open notify can never again cause timed work.  That is
        what makes deferring cross-shard notifies to a window barrier
        sound: the deferred notify arrives, finds the channel already
        created, and does nothing.
        """
        engine = self.engines[rank]
        comm = self.comms[rank]
        for lo, hi in self._edges:
            if rank in (lo, hi):
                peer = hi if rank == lo else lo
                self.sim.spawn(engine.ensure_channel(peer),
                               name=f"preopen[{rank}-{peer}]")
        yield from comm.barrier()
        self.results[rank] = yield from self.workload.program(
            comm, self.torus, **self.kwargs)

    # -- window protocol ------------------------------------------------

    def peek(self) -> float:
        return self.sim.peek()

    def run_window(self, until: Optional[float], ingress: List[tuple],
                   notifies: List[tuple]):
        """One conservative window; ``until=None`` runs to the end.

        ``ingress`` entries are BoundaryLink egress tuples
        ``(arrival, link, seq, dst_rank, dst_port, frame)`` already in
        canonical order; each is injected as a plain delivery callback
        at its precomputed arrival instant — the same event the
        reference link would have scheduled.  ``notifies`` are
        ``(from_rank, to_rank)`` channel-open requests, applied before
        any ingress so a same-instant accept always precedes frame
        processing, as it does sequentially.
        """
        for from_rank, to_rank in notifies:
            self.manager.engines[to_rank].open_channel_from(from_rank)
        for arrival, _link, _seq, dst_rank, dst_port, frame in ingress:
            port = self.cluster.nodes[dst_rank].ports[dst_port]
            Callback(self.sim, _delivery(port, frame), at=arrival)
        self.sim.run(until=until)
        outbox = self.cluster.pdes_outbox
        egress = list(outbox)
        del outbox[:]
        notifies_out = list(self.notify_outbox)
        del self.notify_outbox[:]
        return egress, notifies_out, self.sim.peek()

    # -- checkpoint/restore ---------------------------------------------

    def state_digest(self) -> str:
        """Bit-exact digest of this shard at a window barrier.

        Covers the event heap/deques, clock, sequence counter, link and
        port counters, fault-RNG streams, reliability sequence numbers,
        communicator epochs and the recorder span set — see
        :func:`repro.ckpt.state.shard_digest`.
        """
        from repro.ckpt.state import shard_digest

        return shard_digest(self)

    def replay(self, calls: List[tuple],
               verify: Optional[tuple] = None):
        """Re-apply a logged window history to a freshly built shard.

        ``calls`` is the coordinator's per-shard log of
        ``(until, ingress, notifies)`` tuples; replaying them through
        :meth:`run_window` reconstructs the exact pre-crash state
        because every input the shard ever consumed is in the log (the
        message-logging recovery argument).  ``verify=(ncalls, digest)``
        checks the state digest after ``ncalls`` replayed windows
        against the digest captured when the checkpoint was written and
        raises :class:`~repro.errors.CheckpointMismatchError` on any
        divergence.  Returns the last window's reply (``None`` when the
        log is empty), which serves the in-flight window of a shard
        that died between send and receive.
        """
        from repro.errors import CheckpointMismatchError

        def check(done: int) -> None:
            if verify is not None and done == verify[0]:
                actual = self.state_digest()
                if actual != verify[1]:
                    raise CheckpointMismatchError(
                        f"shard {self.shard_id} replay diverged after "
                        f"{done} windows: state digest "
                        f"{actual[:16]} != checkpointed {verify[1][:16]}"
                    )

        check(0)
        last = None
        for done, (until, ingress, notifies) in enumerate(calls, start=1):
            last = self.run_window(until, ingress, notifies)
            check(done)
        return last

    # -- completion -----------------------------------------------------

    def finish(self) -> dict:
        """Collect results after the coordinator declares quiescence."""
        stuck = [proc.name for proc in self._drivers
                 if not proc.triggered]
        if stuck:
            raise DeadlockError(
                f"shard {self.shard_id} quiescent with unfinished "
                f"drivers: {', '.join(stuck)} at t={self.sim.now:.3f}us "
                f"(undeclared channel edge or lost cross-shard frame)"
            )
        return {
            "results": dict(self.results),
            "events": self.sim.events_processed,
            "now": self.sim.now,
            "reliability": self.cluster.reliability_stats(),
            "recorder": self.sim.recorder,
        }


def _delivery(port, frame):
    """Delivery closure matching the reference link's arrival event."""
    def fire() -> None:
        port.frame_arrived(frame)
    return fire
