"""Sharded parallel simulation engine (conservative-window PDES).

Partitions the simulated torus into contiguous slabs, one simulator
per shard, synchronized by conservative time windows whose lookahead
is the minimum wire latency of any cut link.  ``nshards=1`` through
the same machinery is the bit-exact sequential reference; see
``docs/PDES.md`` for the partitioning, lookahead derivation and
determinism contract.
"""

from repro.pdes.runner import (
    CheckpointPolicy,
    InProcessShard,
    PdesResult,
    PipeShard,
    run_sharded,
    shard_scaling_profile,
)
from repro.pdes.shard import ShardConnectionManager, ShardRuntime
from repro.pdes.workloads import (
    WORKLOADS,
    Workload,
    far_peer,
    get_workload,
    neighbor_edges,
    tree_edges,
)

__all__ = [
    "CheckpointPolicy",
    "InProcessShard",
    "PdesResult",
    "PipeShard",
    "ShardConnectionManager",
    "ShardRuntime",
    "WORKLOADS",
    "Workload",
    "far_peer",
    "get_workload",
    "neighbor_edges",
    "run_sharded",
    "shard_scaling_profile",
    "tree_edges",
]
