"""Workloads the sharded (PDES) engine can run.

A :class:`Workload` bundles three pure functions:

* ``edges(torus)`` — every unordered rank pair the program will ever
  open a channel to, as ``(lo, hi)`` tuples.  The shard runtime
  pre-opens these from *both* sides at t=0 (lower rank dialing, higher
  rank waiting passively), so every channel exists before any program
  traffic and a channel-open notify can never cause timed work
  mid-run.  This is a hard requirement, not an optimization: a channel
  first requested mid-program across a shard boundary would make the
  notified rank dial actively at barrier-deferred time — zero-lookahead
  influence the conservative window cannot schedule (see
  :class:`repro.pdes.shard.ShardConnectionManager`).  The
  dimension-order tree edges used by collectives and the runtime's own
  start barrier are added by the runtime; ``edges`` only declares the
  workload's point-to-point pairs.
* ``program(comm, torus, **kwargs)`` — the per-rank SPMD generator,
  returning that rank's result.  Results must be picklable and derived
  only from simulation state (no wall clock), so shard counts and
  process boundaries cannot change them.
* ``reduce(torus, per_rank)`` — fold the per-rank results into the
  experiment table (a plain dict).  Identity tests compare the
  ``repr`` of this table across shard counts.

The three built-ins mirror the paper's figures: ``pingpong`` is the
fig. 2 latency microbenchmark stretched across the mesh's longest axis
(so it always crosses shard boundaries), ``collective`` is the fig. 5
global-combine pattern, and ``aggregate`` is the fig. 4/5 all-neighbor
exchange used for the shard-scaling benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.collectives.tree import dimension_order_parent
from repro.errors import ConfigurationError
from repro.mpi.request import waitall
from repro.topology.torus import Torus

Edge = Tuple[int, int]


def tree_edges(torus: Torus, root: int = 0) -> List[Edge]:
    """Channel pairs of the dimension-order collective tree."""
    edges = set()
    for rank in torus.ranks():
        if rank == root:
            continue
        parent = dimension_order_parent(torus, root, rank)
        edges.add((min(rank, parent), max(rank, parent)))
    return sorted(edges)


def neighbor_edges(torus: Torus) -> List[Edge]:
    """All nearest-neighbor pairs (the paper's wired channels)."""
    edges = set()
    for rank in torus.ranks():
        for _direction, neighbor in torus.neighbors(rank):
            if neighbor != rank:
                edges.add((min(rank, neighbor), max(rank, neighbor)))
    return sorted(edges)


def far_peer(torus: Torus) -> int:
    """The rank farthest from 0 along the longest axis.

    Uses the same longest-axis rule as the shard partition, so for any
    shard count > 1 ranks 0 and ``far_peer`` land on different shards
    and the pingpong exercises the boundary machinery.
    """
    dims = torus.dims
    axis = max(range(len(dims)), key=lambda a: dims[a])
    coords = [0] * len(dims)
    coords[axis] = dims[axis] - 1
    return torus.rank(coords)


@dataclass(frozen=True)
class Workload:
    """One named PDES workload (see module docstring)."""

    name: str
    edges: Callable[[Torus], Iterable[Edge]]
    program: Callable
    reduce: Callable[[Torus, Dict[int, object]], dict]
    #: Optional ``setup(cluster, comms)`` hook the shard runtime calls
    #: after building engines/communicators but before spawning the
    #: per-rank drivers — for workloads that need device-level
    #: enablement (e.g. the NIC collective engine).  It runs once per
    #: shard with that shard's local comms only, so it must key off the
    #: cluster's non-``None`` nodes.
    setup: Optional[Callable] = None


# -- pingpong (fig. 2 style latency) ------------------------------------

def _pingpong_edges(torus: Torus) -> List[Edge]:
    peer = far_peer(torus)
    return [(0, peer)] if peer != 0 else []


def _pingpong_program(comm, torus: Torus, nbytes: int = 1024,
                      repeats: int = 4):
    peer = far_peer(torus)
    sim = comm.engine.sim
    if peer == 0:
        return None
    if comm.rank == 0:
        start = sim.now
        for _ in range(repeats):
            yield from comm.send(peer, tag=1, nbytes=nbytes)
            yield from comm.recv(source=peer, tag=2,
                                 nbytes=max(nbytes, 4096))
        return round((sim.now - start) / repeats / 2, 6)
    if comm.rank == peer:
        for _ in range(repeats):
            yield from comm.recv(source=0, tag=1,
                                 nbytes=max(nbytes, 4096))
            yield from comm.send(0, tag=2, nbytes=nbytes)
        return round(sim.now, 6)
    return None


def _pingpong_reduce(torus: Torus, per_rank: Dict[int, object]) -> dict:
    peer = far_peer(torus)
    return {
        "workload": "pingpong",
        "peer": peer,
        "latency_us": per_rank.get(0),
        "peer_done_us": per_rank.get(peer),
    }


# -- collective (fig. 5 style global combine) ---------------------------

def _collective_edges(torus: Torus) -> List[Edge]:
    return []  # the tree edges the runtime adds are the whole pattern


def _collective_program(comm, torus: Torus, nbytes: int = 256,
                        repeats: int = 3):
    sim = comm.engine.sim
    start = sim.now
    total = 0.0
    for _ in range(repeats):
        value = yield from comm.allreduce(nbytes=nbytes,
                                          data=float(comm.rank + 1))
        total += value
    return (round(total, 6), round(sim.now - start, 6))


def _collective_reduce(torus: Torus, per_rank: Dict[int, object]) -> dict:
    return {
        "workload": "collective",
        "sums": [per_rank[rank][0] for rank in sorted(per_rank)],
        "elapsed_us": [per_rank[rank][1] for rank in sorted(per_rank)],
    }


# -- nic-collective (NIC-resident global combine) -----------------------

def _nic_collective_setup(cluster, comms) -> None:
    for node in cluster.nodes:
        if node is not None:
            node.via.enable_nic_collectives()
    for comm in comms.values():
        comm.set_collective_tier("nic")


def _nic_collective_program(comm, torus: Torus, nbytes: int = 256,
                            repeats: int = 3):
    sim = comm.engine.sim
    start = sim.now
    total = 0.0
    for _ in range(repeats):
        value = yield from comm.allreduce(nbytes=nbytes,
                                          data=float(comm.rank + 1))
        total += value
    return (round(total, 6), round(sim.now - start, 6))


def _nic_collective_reduce(torus: Torus,
                           per_rank: Dict[int, object]) -> dict:
    return {
        "workload": "nic-collective",
        "sums": [per_rank[rank][0] for rank in sorted(per_rank)],
        "elapsed_us": [per_rank[rank][1] for rank in sorted(per_rank)],
    }


# -- aggregate (fig. 4/5 style all-neighbor exchange) -------------------

def _aggregate_program(comm, torus: Torus, nbytes: int = 4096,
                       iters: int = 4):
    sim = comm.engine.sim
    neighbors = [n for _d, n in torus.neighbors(comm.rank) if n != comm.rank]
    yield from comm.barrier()
    start = sim.now
    recvs = []
    for _ in range(iters):
        for peer in neighbors:
            recvs.append(comm.irecv(peer, tag=3, nbytes=nbytes))
        sends = [comm.isend(peer, tag=3, nbytes=nbytes)
                 for peer in neighbors]
        yield from waitall(sends)
    send_done = sim.now - start
    yield from waitall(recvs)
    return (round(send_done, 6), round(sim.now - start, 6))


def _aggregate_reduce(torus: Torus, per_rank: Dict[int, object]) -> dict:
    send_done = {rank: per_rank[rank][0] for rank in sorted(per_rank)}
    elapsed = {rank: per_rank[rank][1] for rank in sorted(per_rank)}
    return {
        "workload": "aggregate",
        "rank0_send_done_us": send_done[0],
        "max_elapsed_us": max(elapsed.values()),
        "elapsed_us": [elapsed[rank] for rank in sorted(elapsed)],
    }


WORKLOADS: Dict[str, Workload] = {
    "pingpong": Workload("pingpong", _pingpong_edges,
                         _pingpong_program, _pingpong_reduce),
    "collective": Workload("collective", _collective_edges,
                           _collective_program, _collective_reduce),
    "aggregate": Workload("aggregate", neighbor_edges,
                          _aggregate_program, _aggregate_reduce),
    "nic-collective": Workload("nic-collective", _collective_edges,
                               _nic_collective_program,
                               _nic_collective_reduce,
                               setup=_nic_collective_setup),
}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown PDES workload {name!r} "
            f"(have: {', '.join(sorted(WORKLOADS))})"
        ) from None
