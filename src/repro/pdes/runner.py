"""Conservative-window coordinator for sharded simulations.

``run_sharded`` partitions the torus into slabs
(:func:`~repro.topology.partition.make_shard_plan`), builds one
:class:`~repro.pdes.shard.ShardRuntime` per shard — in-process or as
subprocess workers — and advances them in lock-step windows:

1. ``base`` = min over all shards' next-event times and all in-flight
   cross-shard arrivals;
2. every shard runs to ``base + lookahead``, where the lookahead is
   the minimum wire latency of any cut link (no cross-shard influence
   can travel faster, because boundary egress is committed at
   serialization start — see :mod:`repro.topology.partition`);
3. at the barrier, committed egress frames and deferred channel
   notifies are exchanged and injected, in canonical order, for the
   next window.

Termination is *global quiescence* — every shard's queue drained and
nothing in flight — rather than any program-completion probe, so the
sharded and sequential engines process exactly the same event set.  A
shard whose drivers are still blocked at quiescence raises
:class:`~repro.errors.DeadlockError`, the distributed analogue of the
sequential engine's drained-queue deadlock.

Determinism contract (pinned by ``tests/test_pdes_identity.py``): for
fault-free runs, the experiment table, the flight-recorder span set
and every per-rank result are bit-identical across shard counts and
across the in-process/subprocess execution styles.  ``nshards=1``
through this same machinery *is* the sequential reference.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import fastpath
from repro.errors import SimulationError
from repro.hw.params import GigEParams
from repro.obs.merge import merge_recorders
from repro.pdes.shard import ShardRuntime
from repro.pdes.worker import shard_worker_main
from repro.pdes.workloads import get_workload
from repro.sim import core as sim_core
from repro.topology.partition import make_shard_plan, shard_lookahead
from repro.topology.torus import Torus

_INF = float("inf")


@dataclass
class PdesResult:
    """Outcome of one sharded run."""

    table: dict
    per_rank: Dict[int, object]
    nshards: int
    windows: int
    events_processed: int
    now: float
    wall_seconds: float
    processes: bool
    reliability: Dict[str, int] = field(default_factory=dict)
    recorder: Optional[object] = None


class InProcessShard:
    """Shard handle running the runtime in the coordinator process."""

    processes = False

    def __init__(self, spec: dict) -> None:
        self.runtime = ShardRuntime(spec)
        self._reply = None

    def ready(self) -> float:
        return self.runtime.peek()

    def window_send(self, until, ingress, notifies) -> None:
        self._reply = self.runtime.run_window(until, ingress, notifies)

    def window_recv(self):
        reply, self._reply = self._reply, None
        return reply

    def finish_send(self) -> None:
        self._reply = self.runtime.finish()

    def finish_recv(self) -> dict:
        reply, self._reply = self._reply, None
        return reply

    def external_events(self, payload: dict) -> int:
        return 0  # this process's simulators already counted them

    def close(self) -> None:
        pass


class PipeShard:
    """Shard handle driving a spawn-context subprocess worker."""

    processes = True

    def __init__(self, spec: dict) -> None:
        ctx = multiprocessing.get_context("spawn")
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_worker_main, args=(child,), daemon=True,
            name=f"repro-pdes-shard-{spec['shard_id']}",
        )
        self.process.start()
        # Drop our copy of the child's end so EOF propagates on death.
        child.close()
        self.conn.send(("build", spec))

    def _recv(self, expect: str) -> tuple:
        try:
            message = self.conn.recv()
        except EOFError:
            raise SimulationError(
                f"PDES shard worker {self.process.name} died "
                f"(pipe EOF)"
            ) from None
        if message[0] == "error":
            raise SimulationError(
                f"PDES shard worker {self.process.name} failed: "
                f"{message[1]}\n{message[2]}"
            )
        if message[0] != expect:
            raise SimulationError(
                f"PDES protocol error: expected {expect!r}, got "
                f"{message[0]!r}"
            )
        return message

    def ready(self) -> float:
        return self._recv("ready")[1]

    def window_send(self, until, ingress, notifies) -> None:
        self.conn.send(("window", until, ingress, notifies))

    def window_recv(self):
        message = self._recv("barrier")
        return message[1], message[2], message[3]

    def finish_send(self) -> None:
        self.conn.send(("finish",))

    def finish_recv(self) -> dict:
        return self._recv("result")[1]

    def external_events(self, payload: dict) -> int:
        return int(payload["events"])

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=10.0)
        if self.process.is_alive():  # pragma: no cover - cleanup path
            self.process.terminate()
            self.process.join(timeout=5.0)


def run_sharded(dims: Sequence[int], wrap: bool = True,
                workload: str = "aggregate", nshards: int = 1, *,
                kwargs: Optional[dict] = None,
                observe: bool = False,
                metrics_interval: float = 50.0,
                processes: bool = False,
                max_windows: Optional[int] = None) -> PdesResult:
    """Run ``workload`` on a ``dims`` torus across ``nshards`` shards.

    ``processes=False`` keeps every shard in this process (fast to
    start, ideal for determinism tests); ``processes=True`` gives each
    shard its own OS process for real parallel speedup.  Results are
    identical either way.
    """
    start_wall = time.perf_counter()
    torus = Torus(tuple(dims), wrap=wrap)
    plan = make_shard_plan(torus, nshards)
    wl = get_workload(workload)
    lookahead = shard_lookahead(torus, plan, GigEParams())
    base_spec = {
        "dims": list(torus.dims),
        "wrap": torus.wrap,
        "nshards": nshards,
        "workload": wl.name,
        "kwargs": dict(kwargs or {}),
        "fast": fastpath.enabled(),
        "observe": bool(observe),
        "metrics_interval": metrics_interval,
    }
    handle_cls = PipeShard if processes else InProcessShard
    shards: List[object] = []
    try:
        for shard_id in range(nshards):
            shards.append(handle_cls({**base_spec, "shard_id": shard_id}))
        peeks = [shard.ready() for shard in shards]
        pending: List[tuple] = []   # committed egress awaiting injection
        notifies: List[Tuple[int, int]] = []
        windows = 0
        while True:
            base = min(peeks)
            for entry in pending:
                if entry[0] < base:
                    base = entry[0]
            if base == _INF and not notifies:
                break
            if max_windows is not None and windows >= max_windows:
                raise SimulationError(
                    f"PDES run exceeded {max_windows} windows at "
                    f"t={base:.3f}us"
                )
            # base == inf with notifies still queued (a tail-end
            # channel open) falls through to a full-drain window.
            if lookahead == _INF or base == _INF:
                until = None
            else:
                # A frame committed at exactly ``base`` can round to an
                # arrival a couple of ulps below ``fl(base + lookahead)``
                # (its arrival is fl(fl(start + serialize) + propagate),
                # a different rounding order).  Step the bound down a few
                # ulps so ``until`` never overtakes any possible arrival;
                # the boundary events just slide into the next window.
                until = base + lookahead
                for _ in range(5):
                    until = math.nextafter(until, 0.0)
            if until is None:
                ship, pending = pending, []
            else:
                ship = [e for e in pending if e[0] <= until]
                pending = [e for e in pending if e[0] > until]
            per_shard_ingress: Dict[int, list] = {}
            for entry in ship:
                target = plan.shard_of(entry[3])
                per_shard_ingress.setdefault(target, []).append(entry)
            for batch in per_shard_ingress.values():
                # Canonical injection order: (arrival, dst rank, dst
                # port, link name, per-link sequence).
                batch.sort(key=lambda e: (e[0], e[3], e[4], e[1], e[2]))
            per_shard_notifies: Dict[int, list] = {}
            for from_rank, to_rank in notifies:
                target = plan.shard_of(to_rank)
                per_shard_notifies.setdefault(target, []).append(
                    (from_rank, to_rank))
            for batch in per_shard_notifies.values():
                batch.sort()
            notifies = []
            active = []
            for index, shard in enumerate(shards):
                ingress_i = per_shard_ingress.get(index, [])
                notifies_i = per_shard_notifies.get(index, [])
                if (not ingress_i and not notifies_i
                        and until is not None and peeks[index] > until):
                    continue  # nothing for this shard this window
                active.append(index)
                shard.window_send(until, ingress_i, notifies_i)
            for index in active:
                egress, notifies_out, peek = shards[index].window_recv()
                pending.extend(egress)
                notifies.extend(notifies_out)
                peeks[index] = peek
            windows += 1
        for shard in shards:
            shard.finish_send()
        payloads = [shard.finish_recv() for shard in shards]
        per_rank: Dict[int, object] = {}
        reliability: Dict[str, int] = {}
        events = 0
        now = 0.0
        for shard, payload in zip(shards, payloads):
            per_rank.update(payload["results"])
            events += payload["events"]
            sim_core.record_external_events(
                shard.external_events(payload))
            now = max(now, payload["now"])
            for key, value in payload["reliability"].items():
                reliability[key] = reliability.get(key, 0) + value
        recorder = None
        if observe:
            recorder = merge_recorders(
                [p["recorder"] for p in payloads
                 if p["recorder"] is not None])
        table = wl.reduce(torus, per_rank)
        return PdesResult(
            table=table,
            per_rank=per_rank,
            nshards=nshards,
            windows=windows,
            events_processed=events,
            now=now,
            wall_seconds=time.perf_counter() - start_wall,
            processes=processes,
            reliability=reliability,
            recorder=recorder,
        )
    finally:
        for shard in shards:
            shard.close()


def shard_scaling_profile(dims: Sequence[int] = (4, 8, 8),
                          wrap: bool = True,
                          workload: str = "aggregate",
                          shard_counts: Sequence[int] = (1, 2, 4),
                          kwargs: Optional[dict] = None,
                          processes: Optional[bool] = None) -> dict:
    """Wall-clock scaling of one workload across shard counts.

    The returned dict is the ``sharded`` section of ``BENCH_PERF.json``
    — per-count wall seconds, event totals and the experiment table,
    plus the cross-count identity verdict (the tables must match for
    the speedup claim to mean anything) and the host's usable core
    count (the speedup is only meaningful relative to it).

    ``processes=None`` auto-selects: worker processes when more than
    one core is usable, in-process shards otherwise — on a single core
    subprocess barriers are pure context-switch tax with no parallel
    win to pay for it.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    if processes is None:
        processes = cores > 1
    profile: dict = {
        "dims": list(dims),
        "wrap": wrap,
        "workload": workload,
        "kwargs": dict(kwargs or {}),
        "processes": processes,
        "cores": cores,
        "shards": {},
    }
    tables = []
    for count in shard_counts:
        result = run_sharded(dims, wrap=wrap, workload=workload,
                             nshards=count, kwargs=kwargs,
                             processes=processes)
        tables.append(repr(result.table))
        profile["shards"][str(count)] = {
            "wall_seconds": round(result.wall_seconds, 3),
            "events": result.events_processed,
            "windows": result.windows,
            # The full table is hundreds of per-rank floats; the digest
            # is enough to prove cross-count identity in the record.
            "table_sha256": hashlib.sha256(
                tables[-1].encode()).hexdigest()[:16],
        }
    profile["tables_identical"] = len(set(tables)) == 1
    baseline = profile["shards"][str(shard_counts[0])]["wall_seconds"]
    for count in shard_counts:
        entry = profile["shards"][str(count)]
        entry["speedup_vs_baseline"] = (
            round(baseline / entry["wall_seconds"], 2)
            if entry["wall_seconds"] > 0 else None
        )
    return profile
