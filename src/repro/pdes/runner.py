"""Conservative-window coordinator for sharded simulations.

``run_sharded`` partitions the torus into slabs
(:func:`~repro.topology.partition.make_shard_plan`), builds one
:class:`~repro.pdes.shard.ShardRuntime` per shard — in-process or as
subprocess workers — and advances them in lock-step windows:

1. ``base`` = min over all shards' next-event times and all in-flight
   cross-shard arrivals;
2. every shard runs to ``base + lookahead``, where the lookahead is
   the minimum wire latency of any cut link (no cross-shard influence
   can travel faster, because boundary egress is committed at
   serialization start — see :mod:`repro.topology.partition`);
3. at the barrier, committed egress frames and deferred channel
   notifies are exchanged and injected, in canonical order, for the
   next window.

Termination is *global quiescence* — every shard's queue drained and
nothing in flight — rather than any program-completion probe, so the
sharded and sequential engines process exactly the same event set.  A
shard whose drivers are still blocked at quiescence raises
:class:`~repro.errors.DeadlockError`, the distributed analogue of the
sequential engine's drained-queue deadlock.

Determinism contract (pinned by ``tests/test_pdes_identity.py``): for
fault-free runs, the experiment table, the flight-recorder span set
and every per-rank result are bit-identical across shard counts and
across the in-process/subprocess execution styles.  ``nshards=1``
through this same machinery *is* the sequential reference.

Checkpoint/restart (``checkpoint=CheckpointPolicy(...)``): window
barriers are the quiescent points.  The coordinator logs every window
call it issues; every ``every`` windows it captures per-shard state
digests and (with a store) persists the complete set — logs, digests,
pending egress, deferred notifies, peeks — atomically.  A shard that
dies mid-run (:class:`~repro.errors.ShardCrashed`) is respawned and
*replayed* from its log with digest verification, and a whole run can
resume from the newest persisted window set instead of restarting.
The differential harness (``tests/test_ckpt_identity.py``) pins that
crash-at-any-window → recover → completion is bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import __version__, fastpath, telemetry
from repro.canonical import content_hash
from repro.telemetry.registry import geometric_bounds
from repro.ckpt import context as ckpt_context
from repro.ckpt.store import CheckpointStore
from repro.errors import ShardCrashed, SimulationError
from repro.hw.params import GigEParams
from repro.obs.merge import merge_recorders
from repro.pdes.shard import ShardRuntime
from repro.pdes.worker import shard_worker_main
from repro.pdes.workloads import get_workload
from repro.sim import core as sim_core
from repro.topology.partition import make_shard_plan, shard_lookahead
from repro.topology.torus import Torus

_INF = float("inf")

#: Telemetry bucket ladders for quantities that are not seconds:
#: window advance in simulated microseconds, merged frames per window.
_US_BOUNDS = geometric_bounds(0.01, 1e6, 3)
_COUNT_BOUNDS = geometric_bounds(1.0, 1e5, 3)


@dataclass
class CheckpointPolicy:
    """How a sharded run checkpoints, recovers, and resumes.

    ``every`` — capture a checkpoint at every Nth window barrier
    (0 disables captures but keeps in-memory window logs, so crashed
    shards are still recoverable by full replay).  ``store`` — persist
    captured sets durably (None keeps them in-memory only).
    ``resume`` — start from the newest persisted window set under this
    run's key, if one exists.  ``verify`` — check replayed state
    digests against the captured ones (refuse divergent restores).
    ``key`` — override the content-addressed run key (service callers
    pass their cache key so router/fleet can find the checkpoints).
    ``chaos_kill=(shard, window)`` — deliberately kill one shard just
    before the numbered window (chaos drills and the differential
    harness).
    """

    every: int = 1
    store: Optional[CheckpointStore] = None
    resume: bool = False
    verify: bool = True
    key: Optional[str] = None
    chaos_kill: Optional[Tuple[int, int]] = None


@dataclass
class PdesResult:
    """Outcome of one sharded run."""

    table: dict
    per_rank: Dict[int, object]
    nshards: int
    windows: int
    events_processed: int
    now: float
    wall_seconds: float
    processes: bool
    reliability: Dict[str, int] = field(default_factory=dict)
    recorder: Optional[object] = None
    #: Checkpoint/restart accounting (zero / None without a policy).
    recoveries: int = 0
    checkpoints: int = 0
    resumed_from: Optional[int] = None
    ckpt_key: str = ""


class InProcessShard:
    """Shard handle running the runtime in the coordinator process."""

    processes = False

    def __init__(self, spec: dict, restore: Optional[tuple] = None) -> None:
        self._shard_id = int(spec["shard_id"])
        self.runtime = ShardRuntime(spec)
        self._reply = None
        self._restored = None
        if restore is not None:
            self._restored = self.runtime.replay(restore[0], restore[1])

    def _alive(self) -> "ShardRuntime":
        if self.runtime is None:
            raise ShardCrashed(
                f"PDES shard {self._shard_id} is dead (in-process kill)",
                shard_id=self._shard_id,
            )
        return self.runtime

    def restored_state(self):
        return self._restored, self._alive().peek()

    def ready(self) -> float:
        return self._alive().peek()

    def window_send(self, until, ingress, notifies) -> None:
        self._reply = self._alive().run_window(until, ingress, notifies)

    def window_recv(self):
        self._alive()
        reply, self._reply = self._reply, None
        return reply

    def digest(self) -> str:
        return self._alive().state_digest()

    def finish_send(self) -> None:
        self._reply = self._alive().finish()

    def finish_recv(self) -> dict:
        self._alive()
        reply, self._reply = self._reply, None
        return reply

    def external_events(self, payload: dict) -> int:
        return 0  # this process's simulators already counted them

    def kill(self) -> None:
        """Chaos hook: drop the runtime as a process death would."""
        self.runtime = None
        self._reply = None

    def close(self) -> None:
        pass


class PipeShard:
    """Shard handle driving a spawn-context subprocess worker."""

    processes = True

    def __init__(self, spec: dict, restore: Optional[tuple] = None) -> None:
        self._shard_id = int(spec["shard_id"])
        ctx = multiprocessing.get_context("spawn")
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_worker_main, args=(child,), daemon=True,
            name=f"repro-pdes-shard-{spec['shard_id']}",
        )
        self.process.start()
        # Drop our copy of the child's end so EOF propagates on death.
        child.close()
        if restore is None:
            self._send(("build", spec))
            self._restored = None
        else:
            self._send(("restore", spec, restore[0], restore[1]))
            message = self._recv("restored")
            self._restored = (message[1], message[2])

    def _send(self, message: tuple) -> None:
        try:
            self.conn.send(message)
        except (OSError, ValueError) as exc:
            raise ShardCrashed(
                f"PDES shard worker {self.process.name} died "
                f"(pipe write failed: {exc})",
                shard_id=self._shard_id,
            ) from None

    def _recv(self, expect: str) -> tuple:
        try:
            message = self.conn.recv()
        except EOFError:
            raise ShardCrashed(
                f"PDES shard worker {self.process.name} died "
                f"(pipe EOF)",
                shard_id=self._shard_id,
            ) from None
        if message[0] == "error":
            # A *reported* error is a simulation fact, not a crash —
            # replaying it would deterministically fail again.
            raise SimulationError(
                f"PDES shard worker {self.process.name} failed: "
                f"{message[1]}\n{message[2]}"
            )
        if message[0] != expect:
            raise SimulationError(
                f"PDES protocol error: expected {expect!r}, got "
                f"{message[0]!r}"
            )
        return message

    def restored_state(self):
        return self._restored

    def ready(self) -> float:
        return self._recv("ready")[1]

    def window_send(self, until, ingress, notifies) -> None:
        self._send(("window", until, ingress, notifies))

    def window_recv(self):
        message = self._recv("barrier")
        return message[1], message[2], message[3]

    def digest(self) -> str:
        self._send(("digest",))
        return self._recv("digest")[1]

    def finish_send(self) -> None:
        self._send(("finish",))

    def finish_recv(self) -> dict:
        return self._recv("result")[1]

    def external_events(self, payload: dict) -> int:
        return int(payload["events"])

    def kill(self) -> None:
        """Chaos hook: SIGKILL the worker (no cleanup, like a crash)."""
        self.process.kill()
        self.process.join(timeout=10.0)

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=10.0)
        if self.process.is_alive():  # pragma: no cover - cleanup path
            self.process.terminate()
            self.process.join(timeout=5.0)


class _ShardSet:
    """Shard handles under message-logging supervision.

    With a :class:`CheckpointPolicy` the set logs every window call per
    shard; a :class:`~repro.errors.ShardCrashed` from any handle is
    recovered by respawning the shard and replaying its log (verifying
    the last captured state digest), transparently to the window loop.
    Without a policy it is a zero-overhead pass-through: no logs, and
    crashes propagate as before.
    """

    def __init__(self, handle_cls, specs: List[dict],
                 policy: Optional[CheckpointPolicy], key: str) -> None:
        self.handle_cls = handle_cls
        self.specs = specs
        self.policy = policy
        self.key = key
        n = len(specs)
        self.shards: List[object] = []
        self.logs: List[list] = [[] for _ in range(n)]
        self.got: List[int] = [0] * n
        self.digests: List[tuple] = [(0, None)] * n
        self.recoveries = 0
        self.checkpoints_written = 0
        self._chaos_fired = False
        # Incremental capture state: how much of each log the store
        # already holds, and the window file it holds it under (the
        # ``base`` the next capture chains to).
        self._persisted: List[int] = [0] * n
        self._captured_window: Optional[int] = None

    # -- construction ---------------------------------------------------

    def build(self) -> List[float]:
        for spec in self.specs:
            self.shards.append(self.handle_cls(spec))
        return [shard.ready() for shard in self.shards]

    def restore_all(self, data: dict) -> List[float]:
        """Rebuild every shard from a persisted window set by replay."""
        self.logs = [list(calls) for calls in data["logs"]]
        self.digests = [tuple(entry) for entry in data["digests"]]
        self.got = [len(calls) for calls in self.logs]
        self._persisted = [len(calls) for calls in self.logs]
        self._captured_window = data["window"]
        peeks = []
        for index, spec in enumerate(self.specs):
            handle = self.handle_cls(
                spec,
                restore=(self._replay_calls(index), self._verify(index)))
            self.shards.append(handle)
            _last, peek = handle.restored_state()
            peeks.append(peek)
        return peeks

    def _replay_calls(self, index: int) -> list:
        """The shard's logged calls, isolated for (re-)delivery."""
        if self.handle_cls.processes:
            return list(self.logs[index])  # pickling isolates them
        return [
            pickle.loads(entry) if isinstance(entry, bytes)
            else copy.deepcopy(entry)
            for entry in self.logs[index]
        ]

    def _verify(self, index: int) -> Optional[tuple]:
        ncalls, digest = self.digests[index]
        if digest is None or self.policy is None or not self.policy.verify:
            return None
        return (ncalls, digest)

    # -- window protocol with recovery ----------------------------------

    def send(self, index: int, until, ingress, notifies) -> None:
        if self.policy is not None:
            entry = (until, ingress, notifies)
            if not self.handle_cls.processes:
                # In-process shards consume frame objects by reference
                # and mutate them, so the log must hold pristine
                # copies for replay.  Pickle bytes, not deepcopy:
                # dumps is several times cheaper on frame graphs,
                # decoding is deferred to the (rare) replay path, and
                # bytes are GC-untracked — a thousand-window log of
                # live tuples makes every gen-2 collection scan the
                # whole engine heap, which showed up as wall-clock
                # spikes in the overhead profile.  Subprocess shards
                # get isolation for free via the pipe's pickling.
                entry = pickle.dumps(entry, protocol=4)
            self.logs[index].append(entry)
        try:
            self.shards[index].window_send(until, ingress, notifies)
        except ShardCrashed:
            if self.policy is None:
                raise
            # Recovery happens at recv; the call is already logged.

    def recv(self, index: int):
        try:
            reply = self.shards[index].window_recv()
        except ShardCrashed as death:
            reply = self._recover(index, death)
        if self.policy is not None:
            self.got[index] = len(self.logs[index])
        return reply

    def digest(self, index: int) -> str:
        try:
            return self.shards[index].digest()
        except ShardCrashed as death:
            self._recover(index, death)
            return self.shards[index].digest()

    def finish_all(self) -> List[dict]:
        for index in range(len(self.shards)):
            try:
                self.shards[index].finish_send()
            except ShardCrashed as death:
                self._recover(index, death)
                self.shards[index].finish_send()
        payloads = []
        for index in range(len(self.shards)):
            try:
                payloads.append(self.shards[index].finish_recv())
            except ShardCrashed as death:
                self._recover(index, death)
                self.shards[index].finish_send()
                payloads.append(self.shards[index].finish_recv())
        return payloads

    def _recover(self, index: int, death: ShardCrashed):
        """Respawn shard ``index`` and replay its logged window calls.

        Returns the replay's final window reply when the shard died
        with a window in flight (logged but unanswered); the fresh
        runtime's replay of that same call produces the identical
        reply, by the determinism contract.
        """
        if self.policy is None:
            raise death
        self.recoveries += 1
        tel = telemetry.ACTIVE
        if tel is not None:
            tel.registry.counter("pdes_recoveries_total").inc()
            tel.events.warn("pdes.recovery", str(death),
                            run=tel.run_id, shard=index)
        try:
            self.shards[index].close()
        except Exception:  # noqa: BLE001 - dead handle cleanup
            pass
        handle = self.handle_cls(
            self.specs[index],
            restore=(self._replay_calls(index), self._verify(index)))
        self.shards[index] = handle
        last, _peek = handle.restored_state()
        if self.got[index] < len(self.logs[index]):
            return last
        return None

    # -- checkpoint capture / chaos -------------------------------------

    def capture(self, window: int, peeks: List[float], pending: list,
                notifies: list) -> None:
        if self.policy is None:
            return
        tel = telemetry.ACTIVE
        capture_start = tel.now() if tel is not None else 0.0
        digest_start = time.perf_counter()
        if self.policy.verify:
            self.digests = [
                (len(self.logs[i]), self.digest(i))
                for i in range(len(self.shards))
            ]
        else:
            self.digests = [(len(self.logs[i]), None)
                            for i in range(len(self.shards))]
        if tel is not None:
            tel.registry.histogram("ckpt_digest_seconds").observe(
                time.perf_counter() - digest_start)
        store = self.policy.store
        if store is not None:
            # Incremental: persist only the log tail since the last
            # capture, chained by ``base`` — the store splices the
            # chain back together on restore.  Keeps per-capture cost
            # proportional to the interval, not the run so far.
            store.put_window(self.key, window, {
                "window": window,
                "peeks": list(peeks),
                "pending": list(pending),
                "notifies": list(notifies),
                "base": self._captured_window,
                "logs_tail": [
                    log[self._persisted[i]:]
                    for i, log in enumerate(self.logs)
                ],
                "digests": list(self.digests),
            })
            self._persisted = [len(log) for log in self.logs]
            self._captured_window = window
            ckpt_context.note(self.key, "window", window)
            self.checkpoints_written += 1
            if tel is not None:
                tel.registry.counter("ckpt_captures_total").inc()
                tel.registry.histogram("ckpt_capture_seconds").observe(
                    tel.now() - capture_start)
                tel.wall_span("ckpt-capture", f"window-{window}",
                              "ckpt", capture_start, tel.now())

    def maybe_chaos_kill(self, window: int) -> None:
        if (self.policy is None or self.policy.chaos_kill is None
                or self._chaos_fired):
            return
        victim, at_window = self.policy.chaos_kill
        if window == at_window:
            self._chaos_fired = True
            self.shards[victim].kill()

    def close_all(self) -> None:
        for shard in self.shards:
            shard.close()


def run_sharded(dims: Sequence[int], wrap: bool = True,
                workload: str = "aggregate", nshards: int = 1, *,
                kwargs: Optional[dict] = None,
                observe: bool = False,
                metrics_interval: float = 50.0,
                processes: bool = False,
                max_windows: Optional[int] = None,
                checkpoint: Optional[CheckpointPolicy] = None) -> PdesResult:
    """Run ``workload`` on a ``dims`` torus across ``nshards`` shards.

    ``processes=False`` keeps every shard in this process (fast to
    start, ideal for determinism tests); ``processes=True`` gives each
    shard its own OS process for real parallel speedup.  Results are
    identical either way.

    ``checkpoint`` enables window-boundary checkpointing: shard
    crashes are recovered by replay instead of failing the run, and
    with a store + ``resume=True`` the run continues from the newest
    persisted window set.  Results are bit-identical with or without
    it (pinned by ``tests/test_ckpt_identity.py``).
    """
    start_wall = time.perf_counter()
    torus = Torus(tuple(dims), wrap=wrap)
    plan = make_shard_plan(torus, nshards)
    wl = get_workload(workload)
    lookahead = shard_lookahead(torus, plan, GigEParams())
    base_spec = {
        "dims": list(torus.dims),
        "wrap": torus.wrap,
        "nshards": nshards,
        "workload": wl.name,
        "kwargs": dict(kwargs or {}),
        "fast": fastpath.enabled(),
        "observe": bool(observe),
        "metrics_interval": metrics_interval,
    }
    config_hash = content_hash(
        {"config": base_spec, "code_version": __version__})
    run_key = config_hash
    if checkpoint is not None and checkpoint.key:
        run_key = checkpoint.key
    handle_cls = PipeShard if processes else InProcessShard
    specs = [{**base_spec, "shard_id": shard_id}
             for shard_id in range(nshards)]
    shardset = _ShardSet(handle_cls, specs, checkpoint, run_key)
    resumed_from: Optional[int] = None
    try:
        restored = None
        if checkpoint is not None and checkpoint.store is not None:
            checkpoint.store.open_key(run_key, "window", config_hash,
                                      __version__)
            if checkpoint.resume:
                restored = checkpoint.store.latest_window(run_key)
        if restored is not None:
            resumed_from, data = restored
            peeks = shardset.restore_all(data)
            pending = list(data["pending"])
            notifies = list(data["notifies"])
        else:
            peeks = shardset.build()
            pending = []   # committed egress awaiting injection
            notifies = []
        windows = 0        # windows executed *this* run (post-resume)
        # Telemetry is hoisted once: the window loop pays one local
        # ``is not None`` test per window when the plane is disabled.
        tel = telemetry.ACTIVE
        if tel is not None:
            tel.registry.gauge("pdes_lookahead_us").set(
                0.0 if lookahead == _INF else lookahead)
            tel.registry.gauge("pdes_shards").set(nshards)
        while True:
            window_wall_start = tel.now() if tel is not None else 0.0
            base = min(peeks)
            for entry in pending:
                if entry[0] < base:
                    base = entry[0]
            if base == _INF and not notifies:
                break
            if max_windows is not None and windows >= max_windows:
                raise SimulationError(
                    f"PDES run exceeded {max_windows} windows at "
                    f"t={base:.3f}us"
                )
            shardset.maybe_chaos_kill(windows)
            # base == inf with notifies still queued (a tail-end
            # channel open) falls through to a full-drain window.
            if lookahead == _INF or base == _INF:
                until = None
            else:
                # A frame committed at exactly ``base`` can round to an
                # arrival a couple of ulps below ``fl(base + lookahead)``
                # (its arrival is fl(fl(start + serialize) + propagate),
                # a different rounding order).  Step the bound down a few
                # ulps so ``until`` never overtakes any possible arrival;
                # the boundary events just slide into the next window.
                until = base + lookahead
                for _ in range(5):
                    until = math.nextafter(until, 0.0)
            if until is None:
                ship, pending = pending, []
            else:
                ship = [e for e in pending if e[0] <= until]
                pending = [e for e in pending if e[0] > until]
            per_shard_ingress: Dict[int, list] = {}
            for entry in ship:
                target = plan.shard_of(entry[3])
                per_shard_ingress.setdefault(target, []).append(entry)
            for batch in per_shard_ingress.values():
                # Canonical injection order: (arrival, dst rank, dst
                # port, link name, per-link sequence).
                batch.sort(key=lambda e: (e[0], e[3], e[4], e[1], e[2]))
            per_shard_notifies: Dict[int, list] = {}
            for from_rank, to_rank in notifies:
                target = plan.shard_of(to_rank)
                per_shard_notifies.setdefault(target, []).append(
                    (from_rank, to_rank))
            for batch in per_shard_notifies.values():
                batch.sort()
            notifies = []
            active = []
            for index in range(nshards):
                ingress_i = per_shard_ingress.get(index, [])
                notifies_i = per_shard_notifies.get(index, [])
                if (not ingress_i and not notifies_i
                        and until is not None and peeks[index] > until):
                    continue  # nothing for this shard this window
                active.append(index)
                shardset.send(index, until, ingress_i, notifies_i)
            for index in active:
                egress, notifies_out, peek = shardset.recv(index)
                pending.extend(egress)
                notifies.extend(notifies_out)
                peeks[index] = peek
            windows += 1
            if tel is not None:
                wall_now = tel.now()
                tel.registry.counter("pdes_windows_total").inc()
                tel.registry.histogram("pdes_window_seconds").observe(
                    wall_now - window_wall_start)
                tel.registry.histogram(
                    "pdes_merge_frames",
                    bounds=_COUNT_BOUNDS).observe(float(len(ship)))
                next_base = min(peeks)
                for entry in pending:
                    if entry[0] < next_base:
                        next_base = entry[0]
                if base != _INF and next_base != _INF:
                    advance = max(next_base - base, 0.0)
                    tel.registry.histogram(
                        "pdes_window_advance_us",
                        bounds=_US_BOUNDS).observe(advance)
                    if lookahead not in (0.0, _INF):
                        # Fraction of the conservative bound the window
                        # actually consumed (1.0 = perfect lookahead).
                        tel.registry.gauge(
                            "pdes_lookahead_utilization").set(
                            min(advance / lookahead, 1.0))
                tel.wall_span("pdes-window", f"w{windows}", "pdes",
                              window_wall_start, wall_now)
            if (checkpoint is not None and checkpoint.every
                    and windows % checkpoint.every == 0):
                shardset.capture((resumed_from or 0) + windows,
                                 peeks, pending, notifies)
        payloads = shardset.finish_all()
        if tel is not None:
            run_wall = time.perf_counter() - start_wall
            for shard_id, payload in enumerate(payloads):
                shard_events = int(payload["events"])
                tel.registry.gauge("pdes_shard_events",
                                   shard=shard_id).set(shard_events)
                if run_wall > 0:
                    tel.registry.gauge(
                        "pdes_shard_event_rate", shard=shard_id,
                    ).set(shard_events / run_wall)
        per_rank: Dict[int, object] = {}
        reliability: Dict[str, int] = {}
        events = 0
        now = 0.0
        for shard, payload in zip(shardset.shards, payloads):
            per_rank.update(payload["results"])
            events += payload["events"]
            sim_core.record_external_events(
                shard.external_events(payload))
            now = max(now, payload["now"])
            for key, value in payload["reliability"].items():
                reliability[key] = reliability.get(key, 0) + value
        recorder = None
        if observe:
            recorder = merge_recorders(
                [p["recorder"] for p in payloads
                 if p["recorder"] is not None])
        table = wl.reduce(torus, per_rank)
        return PdesResult(
            table=table,
            per_rank=per_rank,
            nshards=nshards,
            windows=windows,
            events_processed=events,
            now=now,
            wall_seconds=time.perf_counter() - start_wall,
            processes=processes,
            reliability=reliability,
            recorder=recorder,
            recoveries=shardset.recoveries,
            checkpoints=shardset.checkpoints_written,
            resumed_from=resumed_from,
            ckpt_key=run_key,
        )
    finally:
        shardset.close_all()


def shard_scaling_profile(dims: Sequence[int] = (4, 8, 8),
                          wrap: bool = True,
                          workload: str = "aggregate",
                          shard_counts: Sequence[int] = (1, 2, 4),
                          kwargs: Optional[dict] = None,
                          processes: Optional[bool] = None) -> dict:
    """Wall-clock scaling of one workload across shard counts.

    The returned dict is the ``sharded`` section of ``BENCH_PERF.json``
    — per-count wall seconds, event totals and the experiment table,
    plus the cross-count identity verdict (the tables must match for
    the speedup claim to mean anything) and the host's usable core
    count (the speedup is only meaningful relative to it).

    ``processes=None`` auto-selects: worker processes when more than
    one core is usable, in-process shards otherwise — on a single core
    subprocess barriers are pure context-switch tax with no parallel
    win to pay for it.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    if processes is None:
        processes = cores > 1
    profile: dict = {
        "dims": list(dims),
        "wrap": wrap,
        "workload": workload,
        "kwargs": dict(kwargs or {}),
        "processes": processes,
        "cores": cores,
        "shards": {},
    }
    tables = []
    for count in shard_counts:
        result = run_sharded(dims, wrap=wrap, workload=workload,
                             nshards=count, kwargs=kwargs,
                             processes=processes)
        tables.append(repr(result.table))
        profile["shards"][str(count)] = {
            "wall_seconds": round(result.wall_seconds, 3),
            "events": result.events_processed,
            "windows": result.windows,
            # The full table is hundreds of per-rank floats; the digest
            # is enough to prove cross-count identity in the record.
            "table_sha256": hashlib.sha256(
                tables[-1].encode()).hexdigest()[:16],
        }
    profile["tables_identical"] = len(set(tables)) == 1
    baseline = profile["shards"][str(shard_counts[0])]["wall_seconds"]
    for count in shard_counts:
        entry = profile["shards"][str(count)]
        entry["speedup_vs_baseline"] = (
            round(baseline / entry["wall_seconds"], 2)
            if entry["wall_seconds"] > 0 else None
        )
    return profile
