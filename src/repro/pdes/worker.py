"""Subprocess entry point for one PDES shard.

Lock-step pipe protocol (synchronous; the coordinator fans a message
out to every worker, then collects every reply — the inter-process
mirror of the in-simulation window barrier):

* ``("build", spec)``            -> ``("ready", peek)``
* ``("restore", spec, calls, verify)``
                                 -> ``("restored", last_reply, peek)``
* ``("window", until, ingress, notifies)``
                                 -> ``("barrier", egress, notifies, peek)``
* ``("digest",)``                -> ``("digest", state_digest)``
* ``("finish",)``                -> ``("result", payload)``
* ``("stop",)``                  -> worker exits

``restore`` is the crash-recovery entry (see :mod:`repro.ckpt`): build
the shard fresh, replay the coordinator's logged window calls, verify
the checkpointed state digest, and hand back the last window's reply
so an in-flight window can be served without re-sending it.

Any exception is reported as ``("error", type_name, traceback_text)``
and the worker exits; the coordinator raises it as a
:class:`~repro.errors.SimulationError`.  There is no heartbeat layer —
shard workers are trusted local children of one run, and the
coordinator's blocking ``recv`` surfaces a death as pipe EOF.
"""

from __future__ import annotations

import traceback

from repro.pdes.shard import ShardRuntime


def shard_worker_main(conn) -> None:
    """Run the pipe protocol until stop/EOF (the child's main)."""
    runtime = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            op = message[0]
            if op == "build":
                runtime = ShardRuntime(message[1])
                conn.send(("ready", runtime.peek()))
            elif op == "restore":
                runtime = ShardRuntime(message[1])
                last = runtime.replay(message[2], message[3])
                conn.send(("restored", last, runtime.peek()))
            elif op == "digest":
                conn.send(("digest", runtime.state_digest()))
            elif op == "window":
                egress, notifies, peek = runtime.run_window(
                    message[1], message[2], message[3])
                conn.send(("barrier", egress, notifies, peek))
            elif op == "finish":
                conn.send(("result", runtime.finish()))
            elif op == "stop":
                return
            else:
                conn.send(("error", "ProtocolError",
                           f"unknown op {op!r}"))
                return
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("error", type(exc).__name__,
                       traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
