"""Intel Pro/1000MT-class GigE port model.

Transmit pipeline (two overlapping stages, as on the real adapter):

1. *fetch* — pop the next transmit descriptor, DMA the frame from host
   memory into the on-board FIFO (PCI-X + memory-bus contention);
2. *wire* — per-descriptor NIC processing, then serialization onto the
   link.

Receive pipeline:

1. *rx* — per-frame NIC processing, consume one receive descriptor
   (blocking when the ring is empty, which models 802.3x pause
   back-pressure rather than drops), DMA the frame to host memory;
2. *interrupt coalescing* — a pending-frame buffer raises the rx
   interrupt ``coalesce_delay`` us after the first undelivered frame or
   immediately once ``coalesce_frames`` are waiting (the "interrupt
   delay" driver tuning of paper section 3);
3. *interrupt* — the handler acquires the CPU at IRQ priority, pays the
   fixed interrupt cost plus a per-frame cost, then hands each frame to
   the attached protocol driver **while still holding the CPU** (Linux
   runs netdev rx at interrupt/softirq level).

Protocol drivers attach via :meth:`set_driver` with a generator
function ``driver(frame)`` that may charge further CPU time (the CPU is
already held) and must re-post receive descriptors via
:meth:`post_rx_descriptors`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import ConfigurationError
from repro.obs.recorder import DMA as _DMA
from repro.hw.fastpath import (
    HARMLESS, FrameTrain, TRAIN_MIN_FRAMES, TrainCallback, commit_train,
    plan_train,
)
from repro.hw.link import Frame, Link
from repro.hw.node import Host, PRIO_IRQ
from repro.hw.params import GigEParams
from repro.sim import Simulator, Store

#: On-board transmit FIFO depth, frames. Enough to keep the wire busy
#: while the next descriptor is fetched.
TX_FIFO_FRAMES = 4


class GigEPort:
    """One port of a dual-port GigE adapter, bound to one link side."""

    def __init__(self, sim: Simulator, host: Host, params: GigEParams,
                 pci_index: int = 0, name: str = "gige") -> None:
        self.sim = sim
        self.host = host
        self.params = params
        self.pci_index = pci_index
        self.name = name
        self.link: Optional[Link] = None
        self.side: Optional[int] = None
        # Transmit path.
        self.tx_queue = Store(sim, capacity=params.tx_ring,
                              name=f"{name}:txq")
        self._tx_fifo = Store(sim, capacity=TX_FIFO_FRAMES,
                              name=f"{name}:txfifo")
        # Receive path.
        self.rx_credits = Store(sim, capacity=params.rx_ring,
                                name=f"{name}:rxcred")
        self._rx_arrivals = Store(sim, name=f"{name}:rxarr")
        self._pending_frames: list = []
        self._irq_timer_deadline: Optional[float] = None
        self._irq_timer_cb: Optional[TrainCallback] = None
        self._driver: Optional[Callable[[Frame], Generator]] = None
        #: NIC-resident collective engine hook (hw.nic_collective),
        #: consulted in the rx stage before any receive descriptor is
        #: consumed.  A True return means the frame was consumed
        #: entirely inside the NIC: no credit, no DMA, no interrupt.
        self.collective_hook: Optional[Callable[[Frame], bool]] = None
        #: Frames hidden inside queued FrameTrains (ring-level parity).
        self._tx_extra = 0
        #: Residue of the last committed train (see hw.fastpath).
        self._virt = None
        self.stats = {
            "tx_frames": 0, "rx_frames": 0, "interrupts": 0,
            "tx_bytes": 0, "rx_bytes": 0, "rx_stalls": 0,
            "trains": 0, "train_frames": 0, "train_fallbacks": 0,
            "nic_rx": 0, "nic_tx": 0,
        }
        for _ in range(params.rx_ring):
            self.rx_credits.items.append(1)
        sim.spawn(self._tx_fetch_loop(), name=f"{self.name}:txfetch")
        sim.spawn(self._tx_wire_loop(), name=f"{self.name}:txwire")
        sim.spawn(self._rx_loop(), name=f"{self.name}:rx")

    # -- wiring ------------------------------------------------------------
    def attach_link(self, link: Link, side: int) -> None:
        if self.link is not None:
            raise ConfigurationError(f"{self.name} already attached")
        link.attach(side, self)
        self.link = link
        self.side = side

    def set_driver(self, driver: Callable[[Frame], Generator]) -> None:
        """Install the protocol rx handler (a generator function)."""
        self._driver = driver

    # -- transmit ---------------------------------------------------------
    def enqueue_tx(self, frame: Frame):
        """Process: place a frame on the transmit descriptor ring.

        Blocks when the ring is full (the paper's driver used 2048
        descriptors exactly to make such stalls rare).
        """
        yield self.tx_queue.put(frame)

    def try_enqueue_tx(self, frame: Frame) -> bool:
        """Non-blocking ring post; False if the ring is full."""
        if (len(self.tx_queue) + self._tx_extra
                >= self.tx_queue.capacity):
            return False
        self.tx_queue.items.append(frame)
        self.tx_queue._dispatch()
        return True

    def send_frames(self, frames: list):
        """Process: enqueue a frame burst; as one train when eligible.

        Reference semantics are a per-frame ring put; the train is a
        fast-path container the fetch stage either plans analytically
        (see :mod:`repro.hw.fastpath`) or unbundles into the identical
        per-frame path.  The whole burst must fit the ring — a burst
        that would block mid-way keeps the per-frame puts.
        """
        tx_queue = self.tx_queue
        if (self.sim._fast and len(frames) >= TRAIN_MIN_FRAMES
                and not tx_queue._putters
                and len(tx_queue.items) + self._tx_extra + len(frames)
                <= tx_queue.capacity):
            self._tx_extra += len(frames) - 1
            tx_queue.stats["puts"] += len(frames) - 1
            yield tx_queue.put(FrameTrain(frames))
            return
        for frame in frames:
            yield tx_queue.put(frame)

    def _tx_fetch_loop(self):
        sim = self.sim
        tx_queue = self.tx_queue
        while True:
            frame = tx_queue.try_get() if sim._fast else None
            if frame is None:
                frame = yield tx_queue.get()
            if type(frame) is FrameTrain:
                frames = frame.frames
                self._tx_extra -= len(frames) - 1
                tx_queue.stats["gets"] += len(frames) - 1
                # Let same-instant bookkeeping (the enqueueing
                # process's continuation, completion plumbing) drain
                # before judging quiescence.
                spins = 0
                while (sim._urgent or sim._normal) and spins < 8:
                    spins += 1
                    yield sim.timeout(0)
                plan = plan_train(self, frames)
                if plan is None:
                    self.stats["train_fallbacks"] += 1
                    for item in frames:
                        yield from self._fetch_one(item)
                    continue
                self.stats["trains"] += 1
                self.stats["train_frames"] += len(frames)
                commit_train(self, frames, plan)
                # Park until the reference fetch stage would return to
                # the ring (its last FIFO put).
                yield sim.sleep_until(plan.fetch_free)
                continue
            yield from self._fetch_one(frame)

    def _fetch_one(self, frame: Frame):
        sim = self.sim
        fifo = self._tx_fifo
        wire = frame.wire_bytes(self.params.frame_overhead)
        rec = sim.recorder
        if rec is not None:
            t0 = sim._now
        yield from self.host.dma(wire, self.pci_index)
        if rec is not None:
            ctx = getattr(frame.payload, "trace", None)
            if ctx is not None:
                rec.span(ctx, _DMA, self.name,
                         f"n{self.host.node_id}", t0, sim._now)
        if frame.on_fetched is not None:
            frame.on_fetched()
        virt = self._virt
        if virt is not None:
            # FIFO slots still virtually held by a committed train
            # count against the put, at their planned pop instants.
            while (len(fifo.items) + virt.occupancy(sim._now)
                    >= fifo.capacity and virt.free_at):
                yield sim.sleep_until(virt.free_at[0])
        if not (sim._fast and fifo.try_put(frame)):
            yield fifo.put(frame)

    def nic_inject_tx(self, frame: Frame):
        """Process: transmit a NIC-originated frame (no descriptor).

        Collective frames the NIC firmware emits were never posted by
        the host, so there is no descriptor fetch and no DMA — the
        frame materializes directly in the on-board transmit FIFO
        (honoring the committed-train residue backpressure exactly
        like the fetch stage) and the wire stage treats it like any
        other frame.
        """
        sim = self.sim
        fifo = self._tx_fifo
        virt = self._virt
        if virt is not None:
            while (len(fifo.items) + virt.occupancy(sim._now)
                    >= fifo.capacity and virt.free_at):
                yield sim.sleep_until(virt.free_at[0])
        self.stats["nic_tx"] += 1
        if not (sim._fast and fifo.try_put(frame)):
            yield fifo.put(frame)

    def _tx_wire_loop(self):
        params = self.params
        sim = self.sim
        fifo = self._tx_fifo
        while True:
            frame = fifo.try_get() if sim._fast else None
            if frame is None:
                frame = yield fifo.get()
            if self.link is None:
                raise ConfigurationError(f"{self.name} has no link")
            if sim._fast and params.hw_checksum and not self.link.is_boundary:
                virt = self._virt
                if virt is not None:
                    if sim._now < virt.wire_ready:
                        # The virtual wire is still draining a train:
                        # this frame starts only once it frees, and its
                        # FIFO slot (popped early here) stays occupied
                        # until then for fetch backpressure.
                        virt.free_at.append(virt.wire_ready)
                        yield sim.sleep_until(virt.wire_ready)
                    self._virt = None
                # Per-descriptor processing and serialization are two
                # back-to-back waits with nothing observable between
                # them (the line has no other requester), so fold them
                # into one absolute wakeup.  The additions mirror the
                # two timeout schedules of the reference path exactly.
                start = sim._now + params.tx_proc
                done = start + self.link.serialization_time(frame)
                yield sim.sleep_until(done)
                self.stats["tx_frames"] += 1
                self.stats["tx_bytes"] += frame.payload_bytes
                self.link.complete_tx(self.side, frame, started=start)
                continue
            # Per-descriptor NIC processing is serial with the wire:
            # this is the ~0.9us that caps a saturated link at ~110 MB/s
            # of user payload (paper section 4.1).
            yield self.sim.timeout(params.tx_proc)
            if not params.hw_checksum:
                yield from self.host.cpu_work(
                    params.sw_checksum_per_byte
                    * (frame.payload_bytes + frame.header_bytes),
                    PRIO_IRQ,
                )
            self.stats["tx_frames"] += 1
            self.stats["tx_bytes"] += frame.payload_bytes
            yield from self.link.transmit(self.side, frame)

    # -- receive ---------------------------------------------------------
    def frame_arrived(self, frame: Frame) -> None:
        """Called by the link when a frame lands on this port."""
        self._rx_arrivals.items.append(frame)
        self._rx_arrivals._dispatch()

    def post_rx_descriptors(self, count: int = 1) -> None:
        """Protocol driver returns ``count`` receive descriptors."""
        for _ in range(count):
            if len(self.rx_credits) >= self.rx_credits.capacity:
                raise ConfigurationError(
                    f"{self.name}: rx ring over-posted"
                )
            self.rx_credits.items.append(1)
        self.rx_credits._dispatch()

    def _rx_loop(self):
        params = self.params
        sim = self.sim
        arrivals = self._rx_arrivals
        credits = self.rx_credits
        while True:
            frame = arrivals.try_get() if sim._fast else None
            if frame is None:
                frame = yield arrivals.get()
            yield sim.timeout(params.rx_proc)
            hook = self.collective_hook
            if hook is not None and hook(frame):
                # Collective frame handled by the NIC engine: it never
                # touches the host (no descriptor, DMA or interrupt).
                self.stats["nic_rx"] += 1
                continue
            if len(credits) == 0:
                self.stats["rx_stalls"] += 1
                yield credits.get()
            elif sim._fast:
                credits.try_get()
            else:
                yield credits.get()
            wire = frame.wire_bytes(params.frame_overhead)
            rec = sim.recorder
            if rec is not None:
                t0 = sim._now
            yield from self.host.dma(wire, self.pci_index)
            if rec is not None:
                ctx = getattr(frame.payload, "trace", None)
                if ctx is not None:
                    rec.span(ctx, _DMA, self.name,
                             f"n{self.host.node_id}", t0, sim._now)
                    # handle_frame turns this into the irq-wait span.
                    frame.rx_ready = sim._now
            self.stats["rx_frames"] += 1
            self.stats["rx_bytes"] += frame.payload_bytes
            self._pending_frames.append(frame)
            if len(self._pending_frames) >= params.coalesce_frames:
                self._fire_irq()
            elif self._irq_timer_deadline is None:
                deadline = sim.now + params.coalesce_delay
                self._irq_timer_deadline = deadline
                if sim._fast:
                    # Same fire instant as the spawned timer: the delay
                    # expression matches _irq_timer's timeout op-for-op
                    # (the spawn's init event runs at this same instant).
                    self._irq_timer_cb = TrainCallback(
                        sim, lambda: self._irq_timer_fired(deadline),
                        delay=max(0.0, deadline - sim.now))
                else:
                    sim.spawn(self._irq_timer(deadline),
                              name=f"{self.name}:irqtimer")

    def _irq_timer_fired(self, deadline: float) -> None:
        if self._irq_timer_deadline == deadline:
            self._irq_timer_cb = None
            if self._pending_frames:
                self._fire_irq()

    def _irq_timer(self, deadline: float):
        yield self.sim.timeout(max(0.0, deadline - self.sim.now))
        self._irq_timer_fired(deadline)

    def _fire_irq(self) -> None:
        if self._irq_timer_cb is not None:
            # Preempted by the frame-count threshold: the queued timer
            # callback will fire as a deadline-mismatch no-op, so the
            # train guard may ignore it.
            self._irq_timer_cb.guard_scope = HARMLESS
            self._irq_timer_cb = None
        self._irq_timer_deadline = None
        if not self._pending_frames:
            return
        frames, self._pending_frames = self._pending_frames, []
        self.stats["interrupts"] += 1
        if self._driver is None:
            raise ConfigurationError(
                f"{self.name}: frame received with no driver attached"
            )
        # Hand the batch to the host's shared interrupt dispatcher —
        # one CPU entry services pending frames from every port.
        self.host.irq.raise_irq([(self._driver, f) for f in frames],
                                source=self.name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GigEPort({self.name})"
