"""Intel Pro/1000MT-class GigE port model.

Transmit pipeline (two overlapping stages, as on the real adapter):

1. *fetch* — pop the next transmit descriptor, DMA the frame from host
   memory into the on-board FIFO (PCI-X + memory-bus contention);
2. *wire* — per-descriptor NIC processing, then serialization onto the
   link.

Receive pipeline:

1. *rx* — per-frame NIC processing, consume one receive descriptor
   (blocking when the ring is empty, which models 802.3x pause
   back-pressure rather than drops), DMA the frame to host memory;
2. *interrupt coalescing* — a pending-frame buffer raises the rx
   interrupt ``coalesce_delay`` us after the first undelivered frame or
   immediately once ``coalesce_frames`` are waiting (the "interrupt
   delay" driver tuning of paper section 3);
3. *interrupt* — the handler acquires the CPU at IRQ priority, pays the
   fixed interrupt cost plus a per-frame cost, then hands each frame to
   the attached protocol driver **while still holding the CPU** (Linux
   runs netdev rx at interrupt/softirq level).

Protocol drivers attach via :meth:`set_driver` with a generator
function ``driver(frame)`` that may charge further CPU time (the CPU is
already held) and must re-post receive descriptors via
:meth:`post_rx_descriptors`.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import ConfigurationError
from repro.hw.link import Frame, Link
from repro.hw.node import Host, PRIO_IRQ
from repro.hw.params import GigEParams
from repro.sim import Simulator, Store

#: On-board transmit FIFO depth, frames. Enough to keep the wire busy
#: while the next descriptor is fetched.
TX_FIFO_FRAMES = 4


class GigEPort:
    """One port of a dual-port GigE adapter, bound to one link side."""

    def __init__(self, sim: Simulator, host: Host, params: GigEParams,
                 pci_index: int = 0, name: str = "gige") -> None:
        self.sim = sim
        self.host = host
        self.params = params
        self.pci_index = pci_index
        self.name = name
        self.link: Optional[Link] = None
        self.side: Optional[int] = None
        # Transmit path.
        self.tx_queue = Store(sim, capacity=params.tx_ring,
                              name=f"{name}:txq")
        self._tx_fifo = Store(sim, capacity=TX_FIFO_FRAMES,
                              name=f"{name}:txfifo")
        # Receive path.
        self.rx_credits = Store(sim, capacity=params.rx_ring,
                                name=f"{name}:rxcred")
        self._rx_arrivals = Store(sim, name=f"{name}:rxarr")
        self._pending_frames: list = []
        self._irq_timer_deadline: Optional[float] = None
        self._driver: Optional[Callable[[Frame], Generator]] = None
        self.stats = {
            "tx_frames": 0, "rx_frames": 0, "interrupts": 0,
            "tx_bytes": 0, "rx_bytes": 0, "rx_stalls": 0,
        }
        for _ in range(params.rx_ring):
            self.rx_credits.items.append(1)
        sim.spawn(self._tx_fetch_loop(), name=f"{self.name}:txfetch")
        sim.spawn(self._tx_wire_loop(), name=f"{self.name}:txwire")
        sim.spawn(self._rx_loop(), name=f"{self.name}:rx")

    # -- wiring ------------------------------------------------------------
    def attach_link(self, link: Link, side: int) -> None:
        if self.link is not None:
            raise ConfigurationError(f"{self.name} already attached")
        link.attach(side, self)
        self.link = link
        self.side = side

    def set_driver(self, driver: Callable[[Frame], Generator]) -> None:
        """Install the protocol rx handler (a generator function)."""
        self._driver = driver

    # -- transmit ---------------------------------------------------------
    def enqueue_tx(self, frame: Frame):
        """Process: place a frame on the transmit descriptor ring.

        Blocks when the ring is full (the paper's driver used 2048
        descriptors exactly to make such stalls rare).
        """
        yield self.tx_queue.put(frame)

    def try_enqueue_tx(self, frame: Frame) -> bool:
        """Non-blocking ring post; False if the ring is full."""
        if len(self.tx_queue) >= self.tx_queue.capacity:
            return False
        self.tx_queue.items.append(frame)
        self.tx_queue._dispatch()
        return True

    def _tx_fetch_loop(self):
        params = self.params
        while True:
            frame = yield self.tx_queue.get()
            wire = frame.wire_bytes(params.frame_overhead)
            yield from self.host.dma(wire, self.pci_index)
            if frame.on_fetched is not None:
                frame.on_fetched()
            yield self._tx_fifo.put(frame)

    def _tx_wire_loop(self):
        params = self.params
        while True:
            frame = yield self._tx_fifo.get()
            # Per-descriptor NIC processing is serial with the wire:
            # this is the ~0.9us that caps a saturated link at ~110 MB/s
            # of user payload (paper section 4.1).
            yield self.sim.timeout(params.tx_proc)
            if not params.hw_checksum:
                yield from self.host.cpu_work(
                    params.sw_checksum_per_byte
                    * (frame.payload_bytes + frame.header_bytes),
                    PRIO_IRQ,
                )
            if self.link is None:
                raise ConfigurationError(f"{self.name} has no link")
            self.stats["tx_frames"] += 1
            self.stats["tx_bytes"] += frame.payload_bytes
            yield from self.link.transmit(self.side, frame)

    # -- receive ---------------------------------------------------------
    def frame_arrived(self, frame: Frame) -> None:
        """Called by the link when a frame lands on this port."""
        self._rx_arrivals.items.append(frame)
        self._rx_arrivals._dispatch()

    def post_rx_descriptors(self, count: int = 1) -> None:
        """Protocol driver returns ``count`` receive descriptors."""
        for _ in range(count):
            if len(self.rx_credits) >= self.rx_credits.capacity:
                raise ConfigurationError(
                    f"{self.name}: rx ring over-posted"
                )
            self.rx_credits.items.append(1)
        self.rx_credits._dispatch()

    def _rx_loop(self):
        params = self.params
        while True:
            frame = yield self._rx_arrivals.get()
            yield self.sim.timeout(params.rx_proc)
            if len(self.rx_credits) == 0:
                self.stats["rx_stalls"] += 1
            yield self.rx_credits.get()
            wire = frame.wire_bytes(params.frame_overhead)
            yield from self.host.dma(wire, self.pci_index)
            self.stats["rx_frames"] += 1
            self.stats["rx_bytes"] += frame.payload_bytes
            self._pending_frames.append(frame)
            if len(self._pending_frames) >= params.coalesce_frames:
                self._fire_irq()
            elif self._irq_timer_deadline is None:
                deadline = self.sim.now + params.coalesce_delay
                self._irq_timer_deadline = deadline
                self.sim.spawn(self._irq_timer(deadline),
                               name=f"{self.name}:irqtimer")

    def _irq_timer(self, deadline: float):
        yield self.sim.timeout(max(0.0, deadline - self.sim.now))
        if self._irq_timer_deadline == deadline and self._pending_frames:
            self._fire_irq()

    def _fire_irq(self) -> None:
        self._irq_timer_deadline = None
        if not self._pending_frames:
            return
        frames, self._pending_frames = self._pending_frames, []
        self.stats["interrupts"] += 1
        if self._driver is None:
            raise ConfigurationError(
                f"{self.name}: frame received with no driver attached"
            )
        # Hand the batch to the host's shared interrupt dispatcher —
        # one CPU entry services pending frames from every port.
        self.host.irq.raise_irq([(self._driver, f) for f in frames])

    def __repr__(self) -> str:  # pragma: no cover
        return f"GigEPort({self.name})"
