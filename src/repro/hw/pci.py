"""Bandwidth-shared buses: the host memory bus (and PCI-X accounting).

:class:`BandwidthBus` is a *fluid* (generalized-processor-sharing) bus:
concurrent transfers share the byte rate max-min fairly, with optional
per-transfer rate caps (a memory copy cannot stream at full bus speed;
a DMA cannot exceed its PCI-X segment rate).  The fluid model costs two
events per transfer plus one per concurrency change — far cheaper and
far more accurate at microsecond scale than chunked FIFO arbitration,
which would make a 1.5 KB copy wait multi-microsecond turns behind
queued DMA bursts.

Allocation is water-filling: every active transfer gets an equal share
of the remaining rate; transfers capped below their share release the
surplus to the rest.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.events import Callback

#: Residual bytes below this complete immediately (a millionth of a
#: byte).  Must be comfortably above accumulated float error so a
#: shrinking horizon can never fall under the ulp of ``sim.now`` —
#: that would stop time advancing and live-lock the event loop.
_EPS = 1e-6
#: Smallest scheduled horizon (us). 1e-6 us stays above float ulp for
#: simulated times up to ~10^9 us.
_MIN_HORIZON = 1e-6


class _Flow:
    """One in-progress transfer on a fluid bus."""

    __slots__ = ("remaining", "cap", "weight", "rate", "done")

    def __init__(self, nbytes: float, cap: Optional[float],
                 weight: float, done) -> None:
        self.remaining = float(nbytes)
        self.cap = cap
        self.weight = weight
        self.rate = 0.0
        self.done = done


class BandwidthBus:
    """A fluid-shared bus with a fixed aggregate byte rate."""

    def __init__(self, sim: Simulator, rate: float, setup: float = 0.0,
                 name: str = "bus") -> None:
        if rate <= 0:
            raise ConfigurationError(f"bus rate must be > 0, got {rate}")
        self.sim = sim
        self.rate = rate
        self.setup = setup
        self.name = name
        self._flows: List[_Flow] = []
        self._last_update = 0.0
        self._wake_generation = 0
        #: Fast-path wake bookkeeping: the currently valid wake target
        #: and the fire times of outstanding wake callbacks.  Invariant
        #: while flows are active: some outstanding time <= the target.
        self._wake_time = 0.0
        self._wake_times: List[float] = []
        #: Transfers past the entry checks but not yet completed; covers
        #: the setup window before the flow is appended, so the frame
        #: train planner can prove the bus fully idle.
        self._entered = 0
        self.stats = {"transfers": 0, "bytes": 0.0, "max_concurrency": 0}

    # -- public API ------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """Number of active transfers."""
        return len(self._flows)

    def busy(self) -> bool:
        return bool(self._flows)

    def utilization_rate(self) -> float:
        """Currently allocated bytes/us across all flows."""
        return sum(flow.rate for flow in self._flows)

    def transfer(self, nbytes: float, rate_cap: Optional[float] = None,
                 weight: float = 1.0):
        """Process: move ``nbytes``; completes when the fluid share
        delivered them.

        ``rate_cap`` bounds this transfer's rate; ``weight`` scales its
        share of a contended bus (memory controllers service CPU loads
        ahead of device DMA, so copies carry a high weight).
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise ConfigurationError(f"rate cap must be > 0, got {rate_cap}")
        if weight <= 0:
            raise ConfigurationError(f"weight must be > 0, got {weight}")
        self.stats["transfers"] += 1
        self.stats["bytes"] += nbytes
        rec = self.sim.recorder
        if rec is not None:
            rec.metrics.observe("bus:" + self.name, self.sim._now,
                                float(nbytes))
        self._entered += 1
        try:
            if self.setup:
                yield self.sim.timeout(self.setup)
            if nbytes == 0:
                return 0.0
            done = self.sim.event(
                name=f"{self.name}:xfer" if self.sim.trace is not None
                else ""
            )
            flow = _Flow(nbytes, rate_cap, weight, done)
            self._settle()
            self._flows.append(flow)
            if len(self._flows) > self.stats["max_concurrency"]:
                self.stats["max_concurrency"] = len(self._flows)
            self._reallocate()
            yield done
        finally:
            self._entered -= 1
        return nbytes

    def transfer_event(self, nbytes: float,
                       rate_cap: Optional[float] = None,
                       weight: float = 1.0,
                       at: Optional[float] = None):
        """Fast-path transfer: returns the completion Event directly.

        Same validation, stats, and timing as :meth:`transfer`, but the
        setup wait and the flow join are fused into one Callback (the
        join runs at the instant the reference path's setup timeout
        would resume), so the caller suspends once instead of twice.
        Requires ``setup > 0`` and ``nbytes > 0`` — other cases keep
        the generator path.  ``at`` overrides the join instant for
        callers that fold a preceding fixed delay into the transfer
        (it must equal the reference path's float-rounded instant).
        """
        if nbytes <= 0:
            raise ConfigurationError(f"non-positive transfer size {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise ConfigurationError(f"rate cap must be > 0, got {rate_cap}")
        if weight <= 0:
            raise ConfigurationError(f"weight must be > 0, got {weight}")
        self.stats["transfers"] += 1
        self.stats["bytes"] += nbytes
        rec = self.sim.recorder
        if rec is not None:
            rec.metrics.observe("bus:" + self.name, self.sim._now,
                                float(nbytes))
        self._entered += 1
        done = self.sim.event(
            name=f"{self.name}:xfer" if self.sim.trace is not None else ""
        )
        done.callbacks.append(self._transfer_done)
        flow = _Flow(nbytes, rate_cap, weight, done)
        if at is not None:
            Callback(self.sim, lambda: self._join(flow), at=at)
        else:
            Callback(self.sim, lambda: self._join(flow), delay=self.setup)
        return done

    def _join(self, flow: _Flow) -> None:
        """Admit a fused-path flow (the post-setup half of transfer)."""
        self._settle()
        self._flows.append(flow)
        if len(self._flows) > self.stats["max_concurrency"]:
            self.stats["max_concurrency"] = len(self._flows)
        self._reallocate()

    def _transfer_done(self, _event) -> None:
        self._entered -= 1

    # -- fluid mechanics ---------------------------------------------------
    def _settle(self) -> None:
        """Advance every flow's progress to the current instant.

        Flows at (or within float error of) zero remaining complete
        even when no time has elapsed — see the _EPS note above.
        """
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows:
            return
        finished = []
        for flow in self._flows:
            if elapsed > 0:
                flow.remaining -= elapsed * flow.rate
            if flow.remaining <= _EPS:
                flow.remaining = 0.0
                finished.append(flow)
        if not finished:
            return
        for flow in finished:
            self._flows.remove(flow)
        if self.sim._fast:
            # Completion runs the done event's callbacks inline instead
            # of round-tripping through the zero-delay queue.  The queue
            # position is identical: a completion instant drains the
            # urgent queue before this (NORMAL) wake fires, so the done
            # event would be at the queue head anyway, and callbacks of
            # multiple finished flows run in the same FIFO order.  All
            # flows are unlinked above before any callback runs, so a
            # re-entrant _settle from a continuation sees a consistent
            # flow list (and elapsed == 0 makes it a no-op).
            for flow in finished:
                done = flow.done
                done._ok = True
                done._value = None
                callbacks, done.callbacks = done.callbacks, None
                done._processed = True
                for callback in callbacks:
                    callback(done)
        else:
            for flow in finished:
                flow.done.succeed()

    def _reallocate(self) -> None:
        """Water-fill the rate over active flows; schedule next wake."""
        flows = self._flows
        if not flows:
            return
        if len(flows) == 1:
            # Same arithmetic as the general loop specialized to one
            # flow (sum of one weight and min over one flow are exact),
            # skipping the list copies and generator overhead.
            f = flows[0]
            unit = self.rate / f.weight
            share = f.weight * unit
            cap = f.cap
            f.rate = cap if (cap is not None and cap < share) else share
            horizon = f.remaining / f.rate
            if horizon < _MIN_HORIZON:
                horizon = _MIN_HORIZON
        else:
            budget = self.rate
            pending = list(flows)
            while pending:
                total_weight = sum(f.weight for f in pending)
                unit = budget / total_weight
                capped = [
                    f for f in pending
                    if f.cap is not None and f.cap < f.weight * unit
                ]
                if not capped:
                    for f in pending:
                        f.rate = f.weight * unit
                    break
                for f in capped:
                    f.rate = f.cap
                    budget -= f.cap
                    pending.remove(f)
            horizon = max(min(f.remaining / f.rate for f in flows),
                          _MIN_HORIZON)
        self._wake_generation += 1
        if self.sim._fast:
            # Reuse an outstanding wake when one already fires at or
            # before the new target: it re-arms itself on a stale fire
            # (see _on_wake_fast), so settle/reallocate still run at
            # exactly the valid instant but membership churn no longer
            # strands a dead callback per reallocation.
            self._wake_time = target = self.sim._now + horizon
            for t in self._wake_times:
                if t <= target:
                    return
            self._wake_times.append(target)
            Callback(self.sim, self._on_wake_fast, at=target)
        else:
            self.sim.spawn(
                self._wake(self._wake_generation, horizon),
                name=f"{self.name}:wake",
            )

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a membership change
        self._settle()
        self._reallocate()

    def _on_wake_fast(self) -> None:
        now = self.sim._now
        times = self._wake_times
        try:
            times.remove(now)
        except ValueError:  # pragma: no cover - defensive
            pass
        if not self._flows:
            return
        target = self._wake_time
        if now >= target:
            self._settle()
            self._reallocate()
            return
        # Stale fire ahead of the valid target: re-arm unless another
        # outstanding wake already covers it.
        for t in times:
            if t <= target:
                return
        times.append(target)
        Callback(self.sim, self._on_wake_fast, at=target)

    def _wake(self, generation: int, delay: float):
        yield self.sim.timeout(delay)
        self._on_wake(generation)
