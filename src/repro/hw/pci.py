"""Bandwidth-shared buses: the host memory bus (and PCI-X accounting).

:class:`BandwidthBus` is a *fluid* (generalized-processor-sharing) bus:
concurrent transfers share the byte rate max-min fairly, with optional
per-transfer rate caps (a memory copy cannot stream at full bus speed;
a DMA cannot exceed its PCI-X segment rate).  The fluid model costs two
events per transfer plus one per concurrency change — far cheaper and
far more accurate at microsecond scale than chunked FIFO arbitration,
which would make a 1.5 KB copy wait multi-microsecond turns behind
queued DMA bursts.

Allocation is water-filling: every active transfer gets an equal share
of the remaining rate; transfers capped below their share release the
surplus to the rest.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim import Simulator

#: Residual bytes below this complete immediately (a millionth of a
#: byte).  Must be comfortably above accumulated float error so a
#: shrinking horizon can never fall under the ulp of ``sim.now`` —
#: that would stop time advancing and live-lock the event loop.
_EPS = 1e-6
#: Smallest scheduled horizon (us). 1e-6 us stays above float ulp for
#: simulated times up to ~10^9 us.
_MIN_HORIZON = 1e-6


class _Flow:
    """One in-progress transfer on a fluid bus."""

    __slots__ = ("remaining", "cap", "weight", "rate", "done")

    def __init__(self, nbytes: float, cap: Optional[float],
                 weight: float, done) -> None:
        self.remaining = float(nbytes)
        self.cap = cap
        self.weight = weight
        self.rate = 0.0
        self.done = done


class BandwidthBus:
    """A fluid-shared bus with a fixed aggregate byte rate."""

    def __init__(self, sim: Simulator, rate: float, setup: float = 0.0,
                 name: str = "bus") -> None:
        if rate <= 0:
            raise ConfigurationError(f"bus rate must be > 0, got {rate}")
        self.sim = sim
        self.rate = rate
        self.setup = setup
        self.name = name
        self._flows: List[_Flow] = []
        self._last_update = 0.0
        self._wake_generation = 0
        self.stats = {"transfers": 0, "bytes": 0.0, "max_concurrency": 0}

    # -- public API ------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """Number of active transfers."""
        return len(self._flows)

    def busy(self) -> bool:
        return bool(self._flows)

    def utilization_rate(self) -> float:
        """Currently allocated bytes/us across all flows."""
        return sum(flow.rate for flow in self._flows)

    def transfer(self, nbytes: float, rate_cap: Optional[float] = None,
                 weight: float = 1.0):
        """Process: move ``nbytes``; completes when the fluid share
        delivered them.

        ``rate_cap`` bounds this transfer's rate; ``weight`` scales its
        share of a contended bus (memory controllers service CPU loads
        ahead of device DMA, so copies carry a high weight).
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise ConfigurationError(f"rate cap must be > 0, got {rate_cap}")
        if weight <= 0:
            raise ConfigurationError(f"weight must be > 0, got {weight}")
        self.stats["transfers"] += 1
        self.stats["bytes"] += nbytes
        if self.setup:
            yield self.sim.timeout(self.setup)
        if nbytes == 0:
            return 0.0
        done = self.sim.event(name=f"{self.name}:xfer")
        flow = _Flow(nbytes, rate_cap, weight, done)
        self._settle()
        self._flows.append(flow)
        if len(self._flows) > self.stats["max_concurrency"]:
            self.stats["max_concurrency"] = len(self._flows)
        self._reallocate()
        yield done
        return nbytes

    # -- fluid mechanics ---------------------------------------------------
    def _settle(self) -> None:
        """Advance every flow's progress to the current instant.

        Flows at (or within float error of) zero remaining complete
        even when no time has elapsed — see the _EPS note above.
        """
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows:
            return
        finished = []
        for flow in self._flows:
            if elapsed > 0:
                flow.remaining -= elapsed * flow.rate
            if flow.remaining <= _EPS:
                flow.remaining = 0.0
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            flow.done.succeed()

    def _reallocate(self) -> None:
        """Water-fill the rate over active flows; schedule next wake."""
        flows = self._flows
        if not flows:
            return
        budget = self.rate
        pending = list(flows)
        while pending:
            total_weight = sum(f.weight for f in pending)
            unit = budget / total_weight
            capped = [
                f for f in pending
                if f.cap is not None and f.cap < f.weight * unit
            ]
            if not capped:
                for f in pending:
                    f.rate = f.weight * unit
                break
            for f in capped:
                f.rate = f.cap
                budget -= f.cap
                pending.remove(f)
        horizon = max(min(f.remaining / f.rate for f in flows),
                      _MIN_HORIZON)
        self._wake_generation += 1
        self.sim.spawn(
            self._wake(self._wake_generation, horizon),
            name=f"{self.name}:wake",
        )

    def _wake(self, generation: int, delay: float):
        yield self.sim.timeout(delay)
        if generation != self._wake_generation:
            return  # superseded by a membership change
        self._settle()
        self._reallocate()
