"""Myrinet comparator model (LaNai9 adapters + Myrinet 2000 switch).

The paper uses a 128-node Myrinet cluster only as the Table 1
comparator, so the model here is message-level rather than frame-level:
a :class:`MyrinetFabric` carries whole messages between hosts with the
latency/bandwidth/host-overhead constants of GM on LaNai9 through a
full-bisection Clos switch (no internal contention; only injection and
ejection ports serialize).

:class:`MyrinetTimeModel` exposes the same analytic interface as
:class:`repro.bench.models.MessageTimeModel` so the LQCD benchmark can
swap interconnects.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.hw.params import MyrinetParams
from repro.sim import Resource, Simulator
from repro.topology.switched import ClosFabric


class MyrinetTimeModel:
    """Analytic message time for GM-class messaging on Myrinet.

    ``time(nbytes, hops)`` = host overhead + switch latency +
    serialization at link bandwidth.  This is the standard LogGP-style
    decomposition; constants from :class:`MyrinetParams`.
    """

    def __init__(self, params: Optional[MyrinetParams] = None) -> None:
        self.params = params or MyrinetParams()

    def latency(self, switch_hops: int = 3) -> float:
        extra = max(0, switch_hops - 1) * self.params.per_switch_hop
        return self.params.latency + extra

    def time(self, nbytes: float, switch_hops: int = 3) -> float:
        return (
            self.params.host_overhead
            + self.latency(switch_hops)
            + nbytes / self.params.bandwidth
        )

    def bandwidth(self, nbytes: float, switch_hops: int = 3) -> float:
        return nbytes / self.time(nbytes, switch_hops)


class MyrinetFabric:
    """Simulated message-level Myrinet network.

    Hosts are integers ``0..n-1``.  ``send`` is a process; delivery
    invokes the registered receiver callback.
    """

    def __init__(self, sim: Simulator, num_hosts: int,
                 params: Optional[MyrinetParams] = None) -> None:
        if num_hosts < 1:
            raise ConfigurationError("need at least one host")
        self.sim = sim
        self.params = params or MyrinetParams()
        self.topology = ClosFabric(num_hosts)
        self._inject = [
            Resource(sim, 1, name=f"myri-in[{h}]") for h in range(num_hosts)
        ]
        self._eject = [
            Resource(sim, 1, name=f"myri-out[{h}]") for h in range(num_hosts)
        ]
        self._receivers: Dict[int, Callable] = {}
        self.stats = {"messages": 0, "bytes": 0}

    def set_receiver(self, host: int, callback: Callable) -> None:
        """Register ``callback(src, payload, nbytes)`` for ``host``."""
        self._receivers[host] = callback

    def send(self, src: int, dst: int, nbytes: float, payload=None):
        """Process: transmit a message; returns after injection.

        Injection holds the source port for the serialization time
        (sender is free afterwards); the message lands at the
        destination after the switch latency, where it serializes
        through the ejection port before the receiver callback runs.
        """
        if src == dst:
            raise ConfigurationError("myrinet loopback send")
        params = self.params
        serial = nbytes / params.bandwidth
        yield from self._inject[src].use(serial + params.host_overhead / 2)
        self.stats["messages"] += 1
        self.stats["bytes"] += nbytes
        hops = self.topology.switch_hops(src, dst)
        delay = params.latency + max(0, hops - 1) * params.per_switch_hop
        self.sim.spawn(
            self._deliver(src, dst, nbytes, payload, delay),
            name=f"myri:{src}->{dst}",
        )

    def _deliver(self, src: int, dst: int, nbytes: float, payload,
                 delay: float):
        yield self.sim.timeout(delay)
        yield from self._eject[dst].use(nbytes / self.params.bandwidth)
        receiver = self._receivers.get(dst)
        if receiver is not None:
            receiver(src, payload, nbytes)
