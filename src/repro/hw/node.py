"""The host model: one CPU, a memory bus, and PCI-X segments.

The paper's nodes are single-processor Pentium 4 Xeons, so *all* host
software — user processes, kernel paths, interrupt handlers — contends
for one CPU.  That single fact drives most of the paper's curves (TCP's
simultaneous-bandwidth collapse, the 3-D aggregated-bandwidth falloff),
so the CPU here is a strict priority resource:

* ``PRIO_IRQ``     — hardware interrupt handlers (and the kernel packet
  switch, which runs at interrupt level);
* ``PRIO_KERNEL``  — softirq/kernel protocol processing (TCP);
* ``PRIO_USER``    — user-level library paths (VIA send/completion);
* ``PRIO_COMPUTE`` — application number crunching.

Memory traffic (protocol copies and NIC DMA) shares one fluid memory
bus (:class:`~repro.hw.pci.BandwidthBus`); a copy is additionally
capped at the CPU's sustained copy rate and holds the CPU while it
runs, so heavy DMA traffic visibly slows copies — the mechanism behind
the paper's large-message 3-D aggregated-bandwidth falloff.  Individual
DMA transfers are capped at the PCI-X segment rate; segment-level PCI
contention never binds for GigE ports (two ports per segment peak at
~260 MB/s of a 1064 MB/s segment), so PCI segments are tracked for
statistics only.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.hw.params import HostParams
from repro.hw.pci import BandwidthBus
from repro.sim import PriorityResource, Simulator

PRIO_IRQ = 0
PRIO_KERNEL = 1
PRIO_USER = 2
PRIO_COMPUTE = 3

#: PCI-X 64-bit/133MHz sustained rate (bytes/us); per-DMA rate cap.
PCIX_RATE = 1064.0


class IrqController:
    """Per-host interrupt dispatch with cross-device batching.

    When the CPU takes a network interrupt, Linux's ``do_IRQ`` path
    services *every* device with pending work before returning — so
    under load one interrupt entry amortizes over frames from all six
    GigE ports.  Devices enqueue (handler, frame) work items via
    :meth:`raise_irq`; a single dispatcher process drains the queue
    while holding the CPU at IRQ priority, paying the fixed entry cost
    once per CPU acquisition, not once per frame.
    """

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._pending = []
        self._seq = 0
        self._running = False
        self.stats = {"entries": 0, "items": 0, "polls": 0}

    def raise_irq(self, items, source: str = "") -> None:
        """Queue work items: iterable of (generator_fn, frame).

        ``source`` is a stable device key.  Same-instant work from
        different devices is serviced in (time, source) order — a fixed
        hardware service discipline, so the order frames reach their
        drivers does not depend on event-queue internals (both
        execution strategies of :mod:`repro.fastpath` must agree on
        it).
        """
        now = self.host.sim._now
        for item in items:
            self._seq += 1
            heapq.heappush(self._pending, (now, source, self._seq) + item)
        if not self._running and self._pending:
            self._running = True
            self.host.sim.spawn(
                self._dispatch(), name=f"irq[{self.host.node_id}]"
            )

    def _dispatch(self):
        host = self.host
        req = (host.cpu.try_acquire(PRIO_IRQ)
               if host.sim._fast else None)
        if req is None:
            req = host.cpu.request(PRIO_IRQ)
            yield req
        try:
            self.stats["entries"] += 1
            yield host.sim.timeout(host.params.interrupt_cost)
            per_frame = host.params.interrupt_per_frame
            while True:
                while self._pending:
                    handler, frame = heapq.heappop(self._pending)[3:]
                    self.stats["items"] += 1
                    if (host.sim._fast
                            and getattr(handler, "folds_irq_cost", False)):
                        # The driver folds the per-frame cost into its
                        # own first wait (see KernelAgent.handle_frame).
                        yield from handler(
                            frame, host.sim._now + per_frame
                        )
                        continue
                    yield host.sim.timeout(per_frame)
                    yield from handler(frame)
                # NAPI-style mitigation (the paper's section 7 second
                # item): keep polling briefly instead of re-arming the
                # interrupt; frames landing in the window are handled
                # without another entry cost.
                window = host.params.napi_poll_window
                if window <= 0:
                    break
                self.stats["polls"] += 1
                yield host.sim.timeout(window)
                if not self._pending:
                    break
        finally:
            self._running = False
            host.cpu.release(req)
        # Work raised while we were releasing restarts the dispatcher.
        if self._pending and not self._running:
            self.raise_irq([])


class Host:
    """A cluster node's processing and memory resources.

    Parameters
    ----------
    sim: owning simulator.
    node_id: rank-like identifier, used in resource names.
    params: host calibration constants.
    num_pci_buses:
        PCI-X segments (statistics only).  The paper's nodes put three
        dual-port adapters on three PCI-X slots.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 params: Optional[HostParams] = None,
                 num_pci_buses: int = 3) -> None:
        if num_pci_buses < 1:
            raise ConfigurationError("need at least one PCI bus")
        self.sim = sim
        self.node_id = node_id
        self.params = params or HostParams()
        self.cpu = PriorityResource(sim, 1, name=f"cpu[{node_id}]")
        self.irq = IrqController(self)
        self.membus = BandwidthBus(
            sim, self.params.membus_rate, setup=0.02,
            name=f"membus[{node_id}]",
        )
        #: Per-PCI-segment traffic counters (bytes).
        self.pci_bytes: List[float] = [0.0] * num_pci_buses
        self.stats = {"copies": 0, "copy_bytes": 0, "dmas": 0,
                      "dma_bytes": 0, "cpu_us": 0.0}

    # -- CPU ------------------------------------------------------------
    def cpu_work(self, duration: float, priority: int = PRIO_KERNEL):
        """Process: occupy the CPU for ``duration`` at ``priority``."""
        if duration < 0:
            raise ConfigurationError(f"negative CPU work {duration}")
        self.stats["cpu_us"] += duration
        yield from self.cpu.use(duration, priority)

    def compute(self, duration: float):
        """Application computation (lowest priority)."""
        yield from self.cpu_work(duration, PRIO_COMPUTE)

    # -- memory copies -----------------------------------------------------
    def copy(self, nbytes: float, priority: int = PRIO_KERNEL,
             hold_cpu: bool = True):
        """Process: a memory copy of ``nbytes``.

        A copy occupies the CPU for its (contention-extended) duration
        and consumes memory-bus bandwidth at no more than the CPU copy
        rate.  Set ``hold_cpu=False`` only if the caller already holds
        the CPU (e.g. inside an interrupt handler).
        """
        self.stats["copies"] += 1
        self.stats["copy_bytes"] += nbytes
        weight = self.params.copy_bus_weight
        fused = self.sim._fast and nbytes > 0 and self.membus.setup
        if hold_cpu:
            req = self.cpu.try_acquire(priority) if self.sim._fast else None
            if req is None:
                req = self.cpu.request(priority)
                yield req
            try:
                if fused:
                    yield self.membus.transfer_event(
                        nbytes, rate_cap=self.params.copy_rate,
                        weight=weight,
                    )
                else:
                    yield from self.membus.transfer(
                        nbytes, rate_cap=self.params.copy_rate,
                        weight=weight,
                    )
            finally:
                self.cpu.release(req)
        elif fused:
            yield self.membus.transfer_event(
                nbytes, rate_cap=self.params.copy_rate, weight=weight
            )
        else:
            yield from self.membus.transfer(
                nbytes, rate_cap=self.params.copy_rate, weight=weight
            )

    def copy_at(self, nbytes: float, when: float):
        """Fast-path IRQ-level copy whose bus join starts at ``when``.

        Equivalent to waiting until ``when`` and then running
        ``copy(nbytes, hold_cpu=False)``: callers that sit on a fixed
        delay before the copy (the rx demux cost) fold the wait into
        the transfer's setup Callback.  Returns the completion event.
        """
        self.stats["copies"] += 1
        self.stats["copy_bytes"] += nbytes
        return self.membus.transfer_event(
            nbytes, rate_cap=self.params.copy_rate,
            weight=self.params.copy_bus_weight,
            at=when + self.membus.setup,
        )

    def copy_time(self, nbytes: float) -> float:
        """Uncontended duration of a copy (for analytic models)."""
        return nbytes / self.params.copy_rate

    # -- DMA ------------------------------------------------------------
    def dma(self, nbytes: float, pci_index: int = 0):
        """Process: a device DMA of ``nbytes`` to/from host memory.

        Contends on the fluid memory bus, individually capped at the
        PCI-X segment rate; never touches the CPU.
        """
        if not 0 <= pci_index < len(self.pci_bytes):
            raise ConfigurationError(
                f"pci index {pci_index} out of range "
                f"[0, {len(self.pci_bytes)})"
            )
        self.stats["dmas"] += 1
        self.stats["dma_bytes"] += nbytes
        self.pci_bytes[pci_index] += nbytes
        rec = self.sim.recorder
        if rec is not None:
            rec.metrics.observe(f"pci{pci_index}:n{self.node_id}",
                                self.sim._now, float(nbytes))
        if self.sim._fast and nbytes > 0 and self.membus.setup:
            yield self.membus.transfer_event(nbytes, rate_cap=PCIX_RATE)
        else:
            yield from self.membus.transfer(nbytes, rate_cap=PCIX_RATE)
        return nbytes

    def interrupt_entry_cost(self) -> float:
        return self.params.interrupt_cost

    def __repr__(self) -> str:  # pragma: no cover
        return f"Host(node={self.node_id})"
