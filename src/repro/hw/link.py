"""Full-duplex point-to-point GigE link model.

A :class:`Link` joins two NIC ports with independent directional
channels.  Transmitting a frame holds the direction's line for the
serialization time of the full wire footprint (payload + protocol
header + Ethernet overhead), then delivers the frame to the remote
port after the propagation delay.  Because each direction is a
dedicated resource, full-duplex traffic never self-interferes — which
is exactly the property that makes the mesh's aggregated-bandwidth
numbers possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hw.faults import CORRUPT, DROP, FaultInjector
from repro.sim import Resource, Simulator
from repro.sim.events import Callback
from repro.obs.recorder import DROP as _DROP, \
    WIRE_HOP as _WIRE_HOP

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.nic import GigEPort

_frame_ids = itertools.count()


@dataclass
class Frame:
    """One Ethernet frame's worth of protocol traffic.

    ``payload`` is an arbitrary protocol object (a VIA packet, a TCP
    segment); the byte counts drive the timing model.

    Attributes
    ----------
    payload_bytes:
        User-data bytes carried in this frame.
    header_bytes:
        Protocol header bytes inside the Ethernet payload (VIA or
        TCP/IP headers), excluded from user-payload accounting but
        serialized on the wire.
    payload:
        The protocol object.
    kind:
        Debug label ("via", "tcp", "ack", ...).
    """

    payload_bytes: int
    header_bytes: int
    payload: Any = None
    kind: str = "data"
    #: Invoked by the NIC once the frame has been DMA'd out of host
    #: memory (VIA send-completion semantics: buffer reusable).
    on_fetched: Optional[Callable[[], None]] = None
    #: Set by fault injection: the frame was damaged on the wire.
    corrupted: bool = False
    frame_id: int = field(default_factory=_frame_ids.__next__)

    def wire_bytes(self, frame_overhead: int, min_frame: int = 64) -> int:
        """Total serialized bytes including Ethernet framing."""
        body = self.payload_bytes + self.header_bytes
        # Ethernet pads short frames to the 64-byte minimum
        # (header 14 + body + FCS 4 >= 64).
        padded = max(body, min_frame - 18)
        return padded + frame_overhead


class Link:
    """A cable between two ports.

    Ports attach with :meth:`attach`; side 0 and side 1 are symmetric.
    """

    #: Whether this is a PDES shard-boundary proxy (see
    #: :class:`BoundaryLink`).  The NIC wire loop and the frame-train
    #: fast path key off this: both shortcut serialization through
    #: :meth:`complete_tx`, which boundary links cannot honor (their
    #: egress must be committed at serialization *start* to respect the
    #: synchronization lookahead).
    is_boundary = False

    def __init__(self, sim: Simulator, wire_rate: float,
                 frame_overhead: int, propagation: float,
                 name: str = "link",
                 corrupt_every: Optional[int] = None,
                 faults: Optional[FaultInjector] = None) -> None:
        if wire_rate <= 0:
            raise ConfigurationError(f"wire rate must be > 0, got {wire_rate}")
        if corrupt_every is not None and corrupt_every < 1:
            raise ConfigurationError(
                f"corrupt_every must be >= 1, got {corrupt_every}"
            )
        self.sim = sim
        self.wire_rate = wire_rate
        self.frame_overhead = frame_overhead
        self.propagation = propagation
        self.name = name
        #: Fault injection: damage every Nth frame per direction
        #: (deterministic, so tests and reruns reproduce exactly).
        self.corrupt_every = corrupt_every
        #: Generalized fault engine (loss/flap/death; see hw.faults).
        self.faults = faults
        self._lines = (
            Resource(sim, 1, name=f"{name}:0->1"),
            Resource(sim, 1, name=f"{name}:1->0"),
        )
        self._ports: list = [None, None]
        self.stats = {"frames": [0, 0], "bytes": [0, 0],
                      "corrupted": [0, 0], "dropped": [0, 0]}

    def attach(self, side: int, port: "GigEPort") -> None:
        """Connect ``port`` at ``side`` (0 or 1)."""
        if side not in (0, 1):
            raise ConfigurationError(f"link side must be 0 or 1, got {side}")
        if self._ports[side] is not None:
            raise ConfigurationError(f"{self.name} side {side} already attached")
        self._ports[side] = port

    def peer(self, side: int) -> "GigEPort":
        port = self._ports[1 - side]
        if port is None:
            raise ConfigurationError(f"{self.name} side {1 - side} unattached")
        return port

    def serialization_time(self, frame: Frame) -> float:
        return frame.wire_bytes(self.frame_overhead) / self.wire_rate

    @property
    def fault_capable(self) -> bool:
        """Any fault knob present (legacy or generalized)?  The
        frame-train fast path refuses to engage on such links."""
        return self.corrupt_every is not None or self.faults is not None

    @property
    def lossy(self) -> bool:
        """Frames can be lost end-to-end (drives auto-reliability)."""
        return self.faults is not None and self.faults.params.lossy()

    def is_dead(self, now: float) -> bool:
        """Permanently dead at ``now`` (the packet switch reroutes)."""
        return self.faults is not None and self.faults.dead(now)

    def _judge(self, side: int, frame: Frame) -> bool:
        """Post-serialization fault verdict; returns whether to
        deliver.  Shared between :meth:`transmit` and
        :meth:`complete_tx` so both execution strategies apply the
        identical fault schedule at the identical instants."""
        if (self.corrupt_every is not None
                and self.stats["frames"][side]
                % self.corrupt_every == 0):
            frame.corrupted = True
            self.stats["corrupted"][side] += 1
        if self.faults is not None:
            verdict = self.faults.judge(
                side, self.stats["frames"][side], self.sim._now
            )
            if verdict is DROP:
                self.stats["dropped"][side] += 1
                return False
            if verdict is CORRUPT:
                if not frame.corrupted:
                    frame.corrupted = True
                    self.stats["corrupted"][side] += 1
        return True

    def transmit(self, side: int, frame: Frame):
        """Process: serialize ``frame`` out of ``side``; deliver to peer.

        Returns (via StopIteration) after serialization completes; the
        delivery itself happens ``propagation`` later without blocking
        the caller (the line is free for the next frame immediately).
        """
        peer = self.peer(side)
        line = self._lines[side]
        duration = self.serialization_time(frame)
        req = line.request()
        yield req
        rec = self.sim.recorder
        started = self.sim._now if rec is not None else 0.0
        try:
            yield self.sim.timeout(duration)
            self.stats["frames"][side] += 1
            self.stats["bytes"][side] += frame.payload_bytes
            deliver = self._judge(side, frame)
        finally:
            line.release(req)
        if rec is not None:
            ctx = getattr(frame.payload, "trace", None)
            if ctx is not None:
                if deliver:
                    rec.span(ctx, _WIRE_HOP, self.name, self.name,
                             started, self.sim._now + self.propagation)
                else:
                    rec.event(ctx, _DROP, self.name, self.name,
                              self.sim._now)
        if not deliver:
            return
        if self.sim._fast:
            # One queue entry instead of a spawned delivery process;
            # lands at the identical instant.
            Callback(self.sim, lambda: peer.frame_arrived(frame),
                     delay=self.propagation)
        else:
            self.sim.spawn(
                self._deliver(peer, frame), name=f"{self.name}:deliver"
            )

    def _deliver(self, peer: "GigEPort", frame: Frame):
        yield self.sim.timeout(self.propagation)
        peer.frame_arrived(frame)

    def complete_tx(self, side: int, frame: Frame,
                    started: float = None) -> None:
        """Fast-path epilogue of :meth:`transmit`.

        The caller has already waited out the serialization time; this
        applies the same stats, fault injection, and delivery schedule
        as the reference path at the identical instant.  The line
        resource is not cycled — the wire loop is its only requester,
        so the grant is unconditional; the grant counter is kept in
        sync for stats parity.
        """
        peer = self.peer(side)
        self._lines[side].stats["grants"] += 1
        self.stats["frames"][side] += 1
        self.stats["bytes"][side] += frame.payload_bytes
        deliver = self._judge(side, frame)
        rec = self.sim.recorder
        if rec is not None:
            ctx = getattr(frame.payload, "trace", None)
            if ctx is not None:
                if deliver and started is not None:
                    rec.span(ctx, _WIRE_HOP, self.name, self.name,
                             started, self.sim._now + self.propagation)
                elif not deliver:
                    rec.event(ctx, _DROP, self.name, self.name,
                              self.sim._now)
        if not deliver:
            return
        Callback(self.sim, lambda: peer.frame_arrived(frame),
                 delay=self.propagation)


class BoundaryLink(Link):
    """Local half of a cut link in a sharded (PDES) simulation.

    Exactly one side is attached — the port that lives in this shard.
    Transmits replay :meth:`Link.transmit`'s float arithmetic op for
    op (line grant, ``fl(now + duration)`` serialization end,
    ``fl(end + propagation)`` arrival), but instead of delivering to an
    attached peer the frame is *committed* to the shard's egress outbox
    at serialization **start**.  Committing at start is what makes the
    conservative window sound: the frame's arrival is then at least one
    full lookahead (min-frame serialization + propagation) after the
    commit event, so a frame committed inside window ``(B_prev, B]``
    always arrives at or after the next barrier and can be exchanged at
    barrier ``B`` without ever landing in the receiving shard's past.

    Ingress (frames committed by the remote half) is injected by the
    shard runtime straight into the attached port's ``frame_arrived``
    at the precomputed arrival instant — the same callback the
    reference path schedules, at the bit-identical time.

    Fault injection is refused: the PDES engine is fault-free in v1
    (loss/death verdicts depend on cross-shard state the conservative
    exchange does not carry).
    """

    is_boundary = True

    def __init__(self, sim: Simulator, wire_rate: float,
                 frame_overhead: int, propagation: float,
                 name: str, outbox: list,
                 remote_rank: int, remote_port: int) -> None:
        super().__init__(sim, wire_rate, frame_overhead, propagation,
                         name=name)
        #: Shard-wide egress buffer, drained at window barriers.
        self.outbox = outbox
        #: Destination of frames sent from the locally attached side.
        self.remote_rank = remote_rank
        self.remote_port = remote_port
        #: Per-link egress sequence, part of the canonical merge key.
        self._egress_seq = 0

    def peer(self, side: int) -> "GigEPort":
        raise ConfigurationError(
            f"{self.name} is a shard boundary; the remote port lives in "
            f"another process"
        )

    def transmit(self, side: int, frame: Frame):
        """Process: serialize out of the shard; commit to the outbox.

        Mirrors :meth:`Link.transmit`'s timing exactly: the line is
        held for the serialization time and stats/recorder effects land
        at serialization end, so a sharded run and the sequential
        reference process the identical event schedule on the sending
        side.  Only the delivery differs — an outbox record instead of
        a :class:`~repro.sim.events.Callback`, carrying the arrival
        instant the reference path would have used.
        """
        if self.corrupt_every is not None or self.faults is not None:
            raise ConfigurationError(
                f"{self.name}: fault injection unsupported on shard "
                f"boundaries"
            )
        line = self._lines[side]
        duration = self.serialization_time(frame)
        req = line.request()
        yield req
        started = self.sim._now
        # The reference path schedules delivery at serialization end
        # (= fl(started + duration), the timeout's landing instant)
        # plus propagation; precompute the identical chained roundings.
        arrival = (started + duration) + self.propagation
        self._commit(side, frame, arrival)
        try:
            yield self.sim.timeout(duration)
            self.stats["frames"][side] += 1
            self.stats["bytes"][side] += frame.payload_bytes
            self._judge(side, frame)
        finally:
            line.release(req)
        rec = self.sim.recorder
        if rec is not None:
            ctx = getattr(frame.payload, "trace", None)
            if ctx is not None:
                rec.span(ctx, _WIRE_HOP, self.name, self.name,
                         started, arrival)

    def _commit(self, side: int, frame: Frame, arrival: float) -> None:
        """Egress record: ships to the coordinator at the next barrier."""
        self._egress_seq += 1
        # The send-completion hook has already run (the NIC fetch stage
        # invokes it before the frame reaches the wire); drop it so the
        # frame pickles cleanly across the process boundary.
        frame.on_fetched = None
        self.outbox.append(
            (arrival, self.name, self._egress_seq,
             self.remote_rank, self.remote_port, frame)
        )

    def complete_tx(self, side: int, frame: Frame,
                    started: float = None) -> None:
        raise ConfigurationError(
            f"{self.name}: the fast wire path must not engage on a "
            f"shard boundary"
        )
