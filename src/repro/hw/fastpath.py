"""Steady-state frame-train fast path for the transmit pipeline.

When a sender queues a burst of back-to-back frames on an otherwise
idle NIC pipeline (the steady state of every bandwidth experiment), the
reference simulation pays ~6 queue events per frame: the DMA join and
bus wake, the FIFO put/get pair, the wire-stage sleep, and the delivery
callback.  None of those intermediate events are observable — only the
per-frame DMA-completion instants (send-completion semantics) and the
arrival instants at the peer port matter.  This module collapses the
whole train into an analytic plan computed with *exactly* the float
operations the per-frame path would execute, then commits the plan as
one bulk update: statistics are added in O(1) batches and only the
observable instants are scheduled (one delivery callback per frame,
plus any ``on_fetched`` completion hooks).

Pipeline recurrences (each a single IEEE-754 double op, in the same
order the live code performs them):

* ``join_i = fl(P_{i-1} + setup)`` — the DMA's bus-join instant;
* ``d_i`` — DMA completion, from a single-flow replay of
  :class:`~repro.hw.pci.BandwidthBus` (water-fill horizon, wake at
  ``fl(t + horizon)``, settle with ``fl(rem - fl(elapsed * rate))``);
* ``P_i = max(d_i, slot_i)`` — the FIFO put, where ``slot_i`` is the
  wire-pop instant that frees the i-th slot of the 4-deep FIFO;
* ``W_i = max(S_{i-1}, P_i)`` — the wire stage pops frame *i*;
* ``S_i = fl(fl(W_i + tx_proc) + fl(wire_bytes / wire_rate))`` — the
  serialization epilogue of the wire loop's folded wait;
* ``A_i = fl(S_i + propagation)`` — arrival at the peer port.

Engagement guard
----------------
The plan is valid only if nothing can perturb the sender's resources
(memory bus, transmit FIFO, wire) before the fetch stage drains at
``P_{n-1}``.  The guard requires the memory bus idle, the wire loop
parked on its FIFO get, the zero-delay queues drained, and every
pending heap entry to either fire at/after the train's last DMA or be
provably harmless: a preempted interrupt-coalescing timer (fires as a
no-op), or a mid-message train delivery terminating at a *different*
host (mid-message receive processing never generates return traffic).
Any contention — aggregated-bandwidth runs, cross traffic, software
checksums, fault injection — fails the guard and the caller falls back
to the exact per-frame path.

A committed train leaves a :class:`VirtualResidue` on the port: the
wire stage is virtually busy until ``S_{n-1}`` and FIFO slots are
virtually occupied until their planned pop instants, so frames (or
further trains, which seed their plan from the residue) that follow
immediately still observe the exact reference timing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.node import PCIX_RATE
from repro.hw.pci import _EPS, _MIN_HORIZON
from repro.obs.recorder import DMA, WIRE_HOP
from repro.sim.events import Callback

#: Minimum burst size worth planning; shorter bursts go per-frame.
TRAIN_MIN_FRAMES = 3

#: ``guard_scope`` value marking a callback harmless to every host.
HARMLESS = object()


class FrameTrain:
    """A burst of frames enqueued as one transmit-ring item."""

    __slots__ = ("frames",)

    def __init__(self, frames: list) -> None:
        self.frames = frames


class TrainCallback(Callback):
    """A Callback the engagement guard can classify.

    ``guard_scope`` is ``None`` while the callback may affect any host
    (blocks every train), a :class:`~repro.hw.node.Host` when its
    effects are confined to that host (blocks only that host's
    trains), or :data:`HARMLESS` once it is known to fire as a no-op.
    """

    __slots__ = ("guard_scope",)

    def __init__(self, sim, fn, guard_scope=None, delay: float = 0.0,
                 at: Optional[float] = None) -> None:
        self.guard_scope = guard_scope
        super().__init__(sim, fn, delay=delay, at=at)


class VirtualResidue:
    """Post-train pipeline state the live loops must respect.

    ``wire_ready`` is when the (virtual) wire stage frees; ``free_at``
    holds the future pop instants of virtually occupied FIFO slots, in
    nondecreasing order.
    """

    __slots__ = ("wire_ready", "free_at")

    def __init__(self, wire_ready: float, free_at: List[float]) -> None:
        self.wire_ready = wire_ready
        self.free_at = free_at

    def occupancy(self, now: float) -> int:
        """Virtually occupied FIFO slots; drops expired entries."""
        free_at = self.free_at
        while free_at and free_at[0] <= now:
            free_at.pop(0)
        return len(free_at)


class _Plan:
    __slots__ = ("dma_done", "arrivals", "d_last", "fetch_free",
                 "wire_ready", "slot_release", "seed_count", "reallocs",
                 "dma_bytes", "payload_bytes")


def _bus_replay(join: float, nbytes: float, bus_rate: float,
                cap: float):
    """Completion instant of an uncontended DMA joining at ``join``.

    Replays :meth:`BandwidthBus._reallocate` (single-flow shortcut) and
    :meth:`BandwidthBus._settle` op-for-op: identical divisions,
    additions, and the 1e-6 horizon clamp, so the result is the bit
    pattern the live path would produce.  Returns
    ``(instant, reallocations)``.
    """
    remaining = float(nbytes)
    unit = bus_rate / 1.0          # weight is 1.0 for NIC DMA
    share = 1.0 * unit
    rate = cap if cap < share else share
    now = join
    reallocs = 0
    while True:
        reallocs += 1
        horizon = remaining / rate
        if horizon < _MIN_HORIZON:
            horizon = _MIN_HORIZON
        target = now + horizon
        elapsed = target - now
        remaining = remaining - elapsed * rate
        now = target
        if remaining <= _EPS:
            return now, reallocs


def plan_train(port, frames) -> Optional[_Plan]:
    """Try to plan ``frames`` as one analytic train on ``port``.

    Returns None when the engagement guard fails; the caller must then
    run the exact per-frame path.
    """
    sim = port.sim
    if not sim._fast or sim.trace is not None:
        return None
    if sim._urgent or sim._normal:
        return None
    link = port.link
    params = port.params
    if (link is None or not params.hw_checksum or link.fault_capable
            or link.is_boundary):
        # Any fault knob (legacy corrupt_every or the generalized
        # loss/flap/death model) disengages the train: the plan
        # schedules arrivals unconditionally, which a dropped frame
        # would falsify.  Shard-boundary links disengage too — their
        # egress must be committed frame by frame at serialization
        # start for the PDES lookahead bound to hold.  The caller runs
        # the exact per-frame path.
        return None
    host = port.host
    membus = host.membus
    if membus._flows or membus._entered or membus.setup <= 0:
        return None
    # The wire stage must be parked on its FIFO get with nothing queued.
    fifo = port._tx_fifo
    if fifo.items or fifo._putters or len(fifo._getters) != 1:
        return None
    line = link._lines[port.side]
    if line._holders or line._waiters:
        return None
    # Send completion mid-train would wake the application while the
    # plan assumes exclusive host resources; only the final frame may
    # carry a completion hook (its effects start at the train's end).
    for frame in frames[:-1]:
        if frame.on_fetched is not None:
            return None

    now = sim._now
    virt = port._virt
    seed_slots: List[float] = []
    s_prev = None
    if virt is not None:
        if now >= virt.wire_ready:
            port._virt = None
        else:
            virt.occupancy(now)
            seed_slots = virt.free_at
            s_prev = virt.wire_ready

    setup = membus.setup
    bus_rate = membus.rate
    tx_proc = params.tx_proc
    dma_overhead = params.frame_overhead
    wire_overhead = link.frame_overhead
    wire_rate = link.wire_rate
    propagation = link.propagation
    fifo_cap = int(fifo.capacity)

    dma_done: List[float] = []
    arrivals: List[float] = []
    slot_release = list(seed_slots)
    seed_count = len(seed_slots)
    p_prev = now
    reallocs = 0
    dma_bytes = 0
    payload_bytes = 0
    for i, frame in enumerate(frames):
        wire = frame.wire_bytes(dma_overhead)
        dma_bytes += wire
        payload_bytes += frame.payload_bytes
        join = p_prev + setup
        d_i, r = _bus_replay(join, wire, bus_rate, PCIX_RATE)
        reallocs += r
        dma_done.append(d_i)
        slot_index = seed_count + i - fifo_cap
        if slot_index >= 0 and slot_release[slot_index] > d_i:
            p_i = slot_release[slot_index]
        else:
            p_i = d_i
        w_i = p_i if (s_prev is None or s_prev < p_i) else s_prev
        slot_release.append(w_i)
        ser = frame.wire_bytes(wire_overhead) / wire_rate
        s_prev = (w_i + tx_proc) + ser
        arrivals.append(s_prev + propagation)
        p_prev = p_i

    d_last = dma_done[-1]
    # Nothing else may touch this host before the last DMA completes.
    for entry in sim._queue:
        if entry[0] >= d_last:
            continue
        scope = getattr(entry[3], "guard_scope", None)
        if scope is HARMLESS or (scope is not None and scope is not host):
            continue
        return None

    plan = _Plan()
    plan.dma_done = dma_done
    plan.arrivals = arrivals
    plan.d_last = d_last
    plan.fetch_free = p_prev
    plan.wire_ready = s_prev
    plan.slot_release = slot_release
    plan.seed_count = seed_count
    plan.reallocs = reallocs
    plan.dma_bytes = dma_bytes
    plan.payload_bytes = payload_bytes
    return plan


def commit_train(port, frames, plan: _Plan) -> VirtualResidue:
    """Apply ``plan``: bulk statistics plus the observable callbacks."""
    sim = port.sim
    host = port.host
    link = port.link
    side = port.side
    n = len(frames)

    membus = host.membus
    membus.stats["transfers"] += n
    membus.stats["bytes"] += plan.dma_bytes
    if membus.stats["max_concurrency"] < 1:
        membus.stats["max_concurrency"] = 1
    membus._last_update = plan.d_last
    membus._wake_time = plan.d_last
    membus._wake_generation += plan.reallocs

    host.stats["dmas"] += n
    host.stats["dma_bytes"] += plan.dma_bytes
    host.pci_bytes[port.pci_index] += plan.dma_bytes

    port.stats["tx_frames"] += n
    port.stats["tx_bytes"] += plan.payload_bytes
    link._lines[side].stats["grants"] += n
    link.stats["frames"][side] += n
    link.stats["bytes"][side] += plan.payload_bytes

    fifo = port._tx_fifo
    fifo.stats["puts"] += n
    fifo.stats["gets"] += n
    level = n if n < fifo.capacity else int(fifo.capacity)
    if fifo.stats["max_level"] < level:
        fifo.stats["max_level"] = level

    # Only the observable instants are scheduled.  Mid-message arrivals
    # that terminate at the peer are scoped to the peer's host for the
    # guard (receive processing of a non-final fragment cannot generate
    # return traffic); forwarded or final fragments stay unscoped.
    peer = link.peer(side)
    peer_node = peer.host.node_id
    last = n - 1
    pending = []
    for i, frame in enumerate(frames):
        if frame.on_fetched is not None:
            pending.append((plan.dma_done[i], None, frame.on_fetched))
        dst = getattr(frame.payload, "dst_node", None)
        scope = (peer.host if (i < last and dst == peer_node) else None)
        pending.append((plan.arrivals[i], scope, frame))
    pending.sort(key=lambda item: item[0])
    for when, scope, target in pending:
        if callable(target):
            Callback(sim, target, at=when)
        else:
            TrainCallback(
                sim, (lambda f=target: peer.frame_arrived(f)),
                guard_scope=scope, at=when,
            )

    rec = sim.recorder
    if rec is not None:
        _record_train_spans(port, frames, plan, rec)

    free_at = [t for t in plan.slot_release if t > plan.fetch_free]
    port._virt = VirtualResidue(plan.wire_ready, free_at)
    return port._virt


def _record_train_spans(port, frames, plan: _Plan, rec) -> None:
    """Synthesize the spans/metrics the reference per-frame path would
    have recorded for this train (recorder-on runs only).

    The fetch-start chain is recomputed with the same recurrence
    ``plan_train`` used, so every instant is the identical IEEE-754
    float the slow path's instrumentation would capture — recorder
    output stays scheduler-mode identical.
    """
    sim = port.sim
    link = port.link
    host = port.host
    node = f"n{host.node_id}"
    tx_proc = port.params.tx_proc
    fifo_cap = int(port._tx_fifo.capacity)
    dma_overhead = port.params.frame_overhead
    bus_series = "bus:" + host.membus.name
    pci_series = f"pci{port.pci_index}:{node}"
    p_prev = sim._now
    for i, frame in enumerate(frames):
        wire = frame.wire_bytes(dma_overhead)
        rec.metrics.observe(bus_series, p_prev, float(wire))
        rec.metrics.observe(pci_series, p_prev, float(wire))
        ctx = getattr(frame.payload, "trace", None)
        if ctx is not None:
            rec.span(ctx, DMA, port.name, node, p_prev, plan.dma_done[i])
            w_i = plan.slot_release[plan.seed_count + i]
            rec.span(ctx, WIRE_HOP, link.name, link.name,
                     w_i + tx_proc, plan.arrivals[i])
        slot_index = plan.seed_count + i - fifo_cap
        if (slot_index >= 0
                and plan.slot_release[slot_index] > plan.dma_done[i]):
            p_prev = plan.slot_release[slot_index]
        else:
            p_prev = plan.dma_done[i]
