"""Calibrated hardware models.

This package models the cluster hardware the paper measured on:

* :mod:`repro.hw.params` — every calibration constant, with the paper
  section it came from;
* :mod:`repro.hw.link` — full-duplex copper GigE links;
* :mod:`repro.hw.pci` — PCI-X bus and memory-bus bandwidth sharing;
* :mod:`repro.hw.node` — the host: CPU resource, memory copies,
  interrupt dispatch;
* :mod:`repro.hw.nic` — the Intel Pro/1000MT-class GigE port model
  with descriptor rings, DMA, interrupt coalescing and checksum
  offload;
* :mod:`repro.hw.myrinet` — the Myrinet LaNai9 + switch comparator.

The models are event-level, not cycle-level: each Ethernet frame is one
unit of work moving through tx-processing -> DMA -> wire -> rx-DMA ->
interrupt -> protocol handler, with the CPU, PCI-X buses and memory bus
as contended resources.  That granularity is exactly enough to make the
paper's latency/bandwidth/aggregation curves emerge from first
principles rather than being painted on.
"""

from repro.hw.params import (
    GigEParams,
    HostParams,
    MyrinetParams,
    TcpParams,
    ViaParams,
    default_gige,
    default_host,
    default_myrinet,
    default_tcp,
    default_via,
)
from repro.hw.link import Frame, Link
from repro.hw.pci import BandwidthBus
from repro.hw.node import (
    Host,
    PRIO_COMPUTE,
    PRIO_IRQ,
    PRIO_KERNEL,
    PRIO_USER,
)
from repro.hw.nic import GigEPort
from repro.hw.myrinet import MyrinetFabric, MyrinetTimeModel

__all__ = [
    "GigEParams",
    "HostParams",
    "ViaParams",
    "TcpParams",
    "MyrinetParams",
    "default_gige",
    "default_host",
    "default_via",
    "default_tcp",
    "default_myrinet",
    "Frame",
    "Link",
    "BandwidthBus",
    "Host",
    "GigEPort",
    "MyrinetFabric",
    "MyrinetTimeModel",
    "PRIO_IRQ",
    "PRIO_KERNEL",
    "PRIO_USER",
    "PRIO_COMPUTE",
]
