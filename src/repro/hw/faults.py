"""Generalized link-fault model with deterministic seeded injection.

The seed's only fault knob was ``corrupt_every`` — damage every Nth
frame, which the Jlab per-packet checksums detect (section 4).  The
reliable-delivery work needs a much richer failure vocabulary, modeled
on what real GigE meshes actually suffer (and what the related
PM/Ethernet and APENet clusters recovered from):

* **probabilistic frame loss** (``loss_rate``) — the frame serializes
  but never reaches the peer (late collision, switch buffer overrun);
* **probabilistic frame corruption** (``corrupt_rate``) — the frame
  arrives with wire damage, to be caught (or not) by the checksum;
* **scheduled drops** (``drop_frames``) — drop exact per-direction
  frame indices, for tests that need surgical losses;
* **link flap** (``flap_period``/``flap_down``/``flap_offset`` and the
  explicit ``down_at`` outage windows) — every frame serialized while
  the link is down is lost;
* **permanent link death** (``die_at``) — after this instant the link
  never delivers again and the kernel packet switch must route around
  it (see :func:`repro.topology.routing.alive_path`).

Determinism
-----------
Every random decision comes from a per-link, per-direction
:class:`random.Random` stream seeded from ``(seed, link name, side)``
via CRC32 — *not* Python's salted ``hash``.  Streams advance once per
judged frame in simulation order, which the event kernel makes fully
deterministic, so the same seed reproduces the identical fault
schedule — and therefore the identical event trace — on every run.

Ambient configuration
---------------------
Benchmarks build their clusters deep inside experiment functions, so
the bench CLI injects faults ambiently: :func:`set_ambient` (or the
:func:`inject` context manager) establishes a default
:class:`FaultParams` that :class:`~repro.cluster.builder.MeshCluster`
applies to every link whose :class:`~repro.hw.params.GigEParams` does
not carry an explicit fault config.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple

from repro.canonical import Canonical
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultParams(Canonical):
    """Declarative fault schedule for one link (or, ambiently, all).

    All times are simulated microseconds; all knobs default to
    "healthy wire" so a default-constructed instance injects nothing.
    """

    #: Base seed for the per-direction RNG streams.
    seed: int = 0
    #: Per-frame probability the frame is silently dropped.
    loss_rate: float = 0.0
    #: Per-frame probability the frame is damaged (checksum territory).
    corrupt_rate: float = 0.0
    #: Exact 1-based per-direction frame indices to drop.
    drop_frames: Tuple[int, ...] = ()
    #: Periodic flap: every ``flap_period`` us the link goes down for
    #: ``flap_down`` us, phase-shifted by ``flap_offset``.
    flap_period: Optional[float] = None
    flap_down: float = 0.0
    flap_offset: float = 0.0
    #: Explicit scheduled outages: ``((start, end), ...)`` windows.
    down_at: Tuple[Tuple[float, float], ...] = ()
    #: Permanent link death instant (None = the link never dies).
    die_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {self.loss_rate}"
            )
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ConfigurationError(
                f"corrupt_rate must be in [0, 1], got {self.corrupt_rate}"
            )
        if self.flap_period is not None:
            if self.flap_period <= 0:
                raise ConfigurationError(
                    f"flap_period must be > 0, got {self.flap_period}"
                )
            if not 0.0 <= self.flap_down <= self.flap_period:
                raise ConfigurationError(
                    f"flap_down must be in [0, flap_period], got "
                    f"{self.flap_down}"
                )
        for window in self.down_at:
            if len(window) != 2 or window[0] > window[1]:
                raise ConfigurationError(
                    f"down_at windows must be (start, end) with "
                    f"start <= end, got {window!r}"
                )

    def active(self) -> bool:
        """Whether any fault knob is non-default."""
        return bool(
            self.loss_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.drop_frames
            or (self.flap_period is not None and self.flap_down > 0.0)
            or self.down_at
            or self.die_at is not None
        )

    def lossy(self) -> bool:
        """Whether frames can be *lost* (drives auto-reliability).

        Corruption counts: with checksum verification on, a damaged
        frame is dropped at the receiver, so it is a loss end-to-end.
        """
        return bool(
            self.loss_rate > 0.0
            or self.corrupt_rate > 0.0
            or self.drop_frames
            or (self.flap_period is not None and self.flap_down > 0.0)
            or self.down_at
            or self.die_at is not None
        )


@dataclass(frozen=True)
class NodeFaultSpec(Canonical):
    """Seeded node-scoped fault schedule (crash, NIC stall/reboot).

    Node faults compose *on top of* the per-link schedules: the
    cluster builder merges each spec into the :class:`FaultParams` of
    every link adjacent to ``rank``, so a crash kills all of the
    node's links atomically (``die_at``) and a NIC outage window maps
    to scheduled link outages (``down_at``) on every port at once.
    A crash additionally tears down the node's own VIs and pending MPI
    requests at the crash instant (see
    ``MeshCluster._node_crashed``) so the victim's program observes
    the failure too, and arms the mesh-wide failure detector.
    """

    #: World rank of the faulty node.
    rank: int = 0
    #: Fail-stop crash instant (us); None = the node never crashes.
    crash_at: Optional[float] = None
    #: NIC stall / reboot windows ``((start, end), ...)`` (us): every
    #: port of the node is down for the window, then comes back.  A
    #: window shorter than the failure-detector timeout is ridden out
    #: by retransmission without a false death verdict.
    nic_down: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"NodeFaultSpec.rank must be >= 0, got {self.rank}"
            )
        if self.crash_at is not None and self.crash_at < 0:
            raise ConfigurationError(
                f"crash_at must be >= 0, got {self.crash_at}"
            )
        for window in self.nic_down:
            if len(window) != 2 or window[0] > window[1]:
                raise ConfigurationError(
                    f"nic_down windows must be (start, end) with "
                    f"start <= end, got {window!r}"
                )

    def active(self) -> bool:
        return self.crash_at is not None or bool(self.nic_down)


def merge_node_faults(
    base: Optional[FaultParams],
    specs: Tuple[NodeFaultSpec, ...],
) -> Optional[FaultParams]:
    """Fold node-fault schedules into one link's :class:`FaultParams`.

    ``specs`` are the node faults of the link's two endpoints; a crash
    at either endpoint kills the link (earliest crash wins over any
    existing ``die_at``), and every NIC outage window becomes a link
    outage window.  Returns ``base`` unchanged when no spec is active.
    """
    crash_times = [s.crash_at for s in specs if s.crash_at is not None]
    windows = tuple(w for s in specs for w in s.nic_down)
    if not crash_times and not windows:
        return base
    params = base if base is not None else FaultParams()
    die_at = params.die_at
    if crash_times:
        earliest = min(crash_times)
        die_at = earliest if die_at is None else min(die_at, earliest)
    from dataclasses import replace

    return replace(
        params, die_at=die_at, down_at=params.down_at + windows,
    )


def _stream_seed(seed: int, name: str, side: int) -> int:
    """Deterministic (unsalted) stream seed for one link direction."""
    return zlib.crc32(f"{seed}:{name}:{side}".encode()) ^ (seed << 1)


#: Verdicts returned by :meth:`FaultInjector.judge`.
DELIVER = "deliver"
CORRUPT = "corrupt"
DROP = "drop"


class FaultInjector:
    """Stateful per-link fault engine driven by a :class:`FaultParams`.

    One injector serves both directions of its link, with independent
    RNG streams per direction.  ``stats`` counts injected events by
    cause, indexed ``[side]`` like the link's own counters.
    """

    def __init__(self, params: FaultParams, link_name: str) -> None:
        self.params = params
        self.link_name = link_name
        self._rngs = (
            Random(_stream_seed(params.seed, link_name, 0)),
            Random(_stream_seed(params.seed, link_name, 1)),
        )
        self._drop_set = frozenset(params.drop_frames)
        self.stats = {
            "loss": [0, 0], "corrupt": [0, 0], "flap": [0, 0],
            "dead": [0, 0], "scheduled": [0, 0],
        }
        REGISTRY.append(self)

    # -- schedule queries ---------------------------------------------------
    def dead(self, now: float) -> bool:
        """Permanently dead at ``now``?"""
        die_at = self.params.die_at
        return die_at is not None and now >= die_at

    def link_up(self, now: float) -> bool:
        """Transiently up at ``now`` (flap + scheduled outages)?"""
        p = self.params
        for start, end in p.down_at:
            if start <= now < end:
                return False
        if p.flap_period is not None and p.flap_down > 0.0:
            phase = (now - p.flap_offset) % p.flap_period
            if 0.0 <= phase < p.flap_down:
                return False
        return True

    # -- the per-frame verdict ---------------------------------------------
    def judge(self, side: int, frame_index: int, now: float) -> str:
        """Fate of the ``frame_index``-th (1-based) frame on ``side``.

        Called once per serialized frame, in simulation order, so the
        RNG streams advance deterministically.
        """
        p = self.params
        if self.dead(now):
            self.stats["dead"][side] += 1
            return DROP
        if not self.link_up(now):
            self.stats["flap"][side] += 1
            return DROP
        if frame_index in self._drop_set:
            self.stats["scheduled"][side] += 1
            return DROP
        rng = self._rngs[side]
        if p.loss_rate > 0.0 and rng.random() < p.loss_rate:
            self.stats["loss"][side] += 1
            return DROP
        if p.corrupt_rate > 0.0 and rng.random() < p.corrupt_rate:
            self.stats["corrupt"][side] += 1
            return CORRUPT
        return DELIVER

    def injected(self) -> int:
        """Total injected faults (all causes, both directions)."""
        return sum(sum(pair) for pair in self.stats.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.link_name!r}, {self.params!r})"


#: Every injector constructed in this interpreter (cleared by
#: :func:`clear_registry`); the bench CLI reads it to report injected
#: fault totals for experiments that build clusters internally.
REGISTRY: list = []


def clear_registry() -> None:
    REGISTRY.clear()


def injected_totals() -> dict:
    """Aggregate injected-fault counts across :data:`REGISTRY`."""
    totals = {"loss": 0, "corrupt": 0, "flap": 0, "dead": 0,
              "scheduled": 0}
    for injector in REGISTRY:
        for cause, pair in injector.stats.items():
            totals[cause] += sum(pair)
    return totals


_ambient: Optional[FaultParams] = None


def set_ambient(params: Optional[FaultParams]) -> None:
    """Set (or clear, with None) the ambient fault default."""
    global _ambient
    _ambient = params


def ambient() -> Optional[FaultParams]:
    """The ambient fault default, if any."""
    return _ambient


@contextmanager
def inject(params: Optional[FaultParams]):
    """Temporarily establish ``params`` as the ambient fault default."""
    global _ambient
    previous = _ambient
    _ambient = params
    try:
        yield
    finally:
        _ambient = previous
