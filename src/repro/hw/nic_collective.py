"""NIC-resident collective protocols (barrier / broadcast / combine).

Yu, Buntinas, Graham & Panda (cs/0402027) move collective forwarding
into the NIC: intermediate hops of a tree-based collective then pay
*no* host cost — no per-hop descriptor post, no syscall, no interrupt
— only NIC firmware time.  On the paper's GigE mesh that eliminates
the ~6 us host API/IRQ term *per tree hop*, which is exactly the term
the breakdown table (PR 5) reproduces.

This module is that firmware, modeled as a small state machine bound
to one node's :class:`~repro.via.device.ViaDevice`:

* **rx** — every :class:`~repro.hw.nic.GigEPort` checks an installed
  ``collective_hook`` right after per-frame rx processing, *before*
  consuming a receive descriptor.  A collective frame is consumed
  entirely inside the NIC: no rx credit, no DMA to host memory, no
  coalescing, no interrupt.
* **combine/forward** — partial values fold in the NIC
  (:data:`NIC_COMBINE_COST`) in the same canonical order as the host
  tree (local contribution first, then children in tree order) and one
  ``NIC_REDUCE`` frame per subtree climbs toward the root; the result
  waves back down as ``NIC_CBCAST`` frames injected straight into the
  transmit FIFO (:meth:`~repro.hw.nic.GigEPort.nic_inject_tx`) —
  the host descriptor ring is never touched.
* **completion** — each participating host gets exactly *one*
  interrupt, when its own result is ready (none at all for a
  broadcast root or a non-root reduce contributor).

Reliability: when the device's go-back-N layer is engaged
(``device.reliable``, i.e. some link can lose frames) the engine runs
its own NIC-level ARQ — per-peer sequence numbers on collective
frames, cumulative ``NIC_ACK``s, RTO retransmission with the same
``rel_rto``/backoff/budget knobs as the kernel layer.  On a lossless
fabric frames stay unsequenced and no ACK traffic exists, so default
runs are bit-identical to pre-ARQ behavior.

Fault interop: the kernel agent forwards ``on_peer_dead`` /
``on_local_crash`` here exactly as it does to the kernel-collective
engine, so a mid-collective death fails every waiter with
:class:`~repro.errors.ViaError` (surfacing as ``MpiProcFailed``
through the communicator) instead of wedging the NIC state machine.

Costs are module constants (not :class:`~repro.hw.params.GigEParams`
fields — the canonical config digest is pinned), calibrated well below
the kernel tier's per-hop interrupt + coalescing cost so the crossover
study shows the offload win at every mesh size.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.collectives.tree import (
    dimension_order_children,
    dimension_order_parent,
)
from repro.errors import ViaError
from repro.hw.link import Frame
from repro.hw.node import PRIO_USER
from repro.obs.recorder import (
    API_CALL as _API_CALL,
    COMPLETION as _COMPLETION,
    NIC_COMBINE as _NIC_COMBINE,
    NIC_FORWARD as _NIC_FORWARD,
)
from repro.via.packet import NIC_COLLECTIVE_KINDS, PacketKind, ViaPacket

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.device import ViaDevice

#: NIC firmware cost to accept one collective frame off the wire (us).
NIC_RX_COST = 0.35
#: NIC firmware cost of one combine (fold) step on a partial value.
NIC_COMBINE_COST = 0.25
#: NIC firmware cost to build and inject one outgoing frame.
NIC_TX_COST = 0.2
#: Host cost of the single user-space doorbell that deposits the local
#: contribution into NIC memory (no syscall: a mapped register write).
DOORBELL_COST = 0.3
#: Host IRQ-handler cost of delivering the final result (paid once per
#: collective, not per hop).
NIC_COMPLETE_COST = 0.4


class _OpState:
    """Per-collective in-flight state on one node's NIC."""

    __slots__ = ("mode", "root", "parent", "children", "child_values",
                 "value_local", "have_local", "op", "nbytes", "waiter",
                 "trace", "result", "done")

    def __init__(self, mode: str, root: int, parent: Optional[int],
                 children: Tuple[int, ...]) -> None:
        self.mode = mode
        self.root = root
        self.parent = parent
        self.children = children
        #: Child subtree values keyed by child rank (fold is deferred
        #: to subtree completion so the order is canonical, not
        #: arrival order — bit-identical to the host tree).
        self.child_values: Dict[int, Any] = {}
        self.value_local: Any = None
        self.have_local = False
        self.op: Optional[Callable] = None
        self.nbytes = 0
        self.waiter = None
        self.trace = None
        self.result: Any = None
        self.done = False


class NicCollective:
    """NIC-firmware collective engine bound to one node's device."""

    def __init__(self, device: "ViaDevice") -> None:
        self.device = device
        self.sim = device.sim
        self.rank = device.rank
        self.torus = device.torus
        self._sequence = 0
        self._ops: Dict[int, _OpState] = {}
        #: (parent, children) per root, cached (arbitrary-root bcast).
        self._trees: Dict[int, Tuple[Optional[int], Tuple[int, ...]]] = {}
        # NIC-level go-back-N state (engaged iff device.reliable).
        self._tx_next: Dict[int, int] = {}
        self._unacked: Dict[int, Dict[int, ViaPacket]] = {}
        self._rx_next: Dict[int, int] = {}
        self._retries: Dict[int, int] = {}
        self._rto_armed: set = set()
        self.stats = {
            "collectives": 0, "frames": 0, "combines": 0,
            "forwards": 0, "completions": 0, "aborted": 0,
            "acks_sent": 0, "acks_received": 0, "retransmits": 0,
            "dup_frames": 0, "ooo_dropped": 0,
            "dropped_bad_checksum": 0, "dropped_dead": 0,
        }

    # -- tree geometry ------------------------------------------------

    def _tree(self, root: int) -> Tuple[Optional[int], Tuple[int, ...]]:
        tree = self._trees.get(root)
        if tree is None:
            tree = (
                dimension_order_parent(self.torus, root, self.rank),
                tuple(dimension_order_children(self.torus, root,
                                               self.rank)),
            )
            self._trees[root] = tree
        return tree

    def _state(self, sequence: int, mode: str, root: int) -> _OpState:
        state = self._ops.get(sequence)
        if state is None:
            parent, children = self._tree(root)
            state = _OpState(mode, root, parent, children)
            self._ops[sequence] = state
        return state

    # -- fault interop -------------------------------------------------

    def _check_alive(self) -> None:
        """Refuse to start a collective with a *known*-dead participant.

        Deliberately detection-based (the agent's ``_known_dead``, fed
        by the failure detector), not the fault oracle: a collective
        started inside the crash-to-detection window proceeds, stalls
        on the missing contribution, and is aborted by the
        ``on_peer_dead`` notice — the same ULFM path host-tier
        collectives ride, so the communicator translates it to
        ``MpiProcFailed`` uniformly.
        """
        dead = sorted(getattr(self.device.agent, "_known_dead", ()))
        if dead:
            raise ViaError(
                f"node {self.rank}: NIC collective with dead "
                f"participant(s) {dead}"
            )

    def _local_dead(self) -> bool:
        health = self.device._fabric_health
        return (health is not None
                and getattr(health, "has_node_faults", False)
                and not health.node_alive(self.rank))

    def _fail_pending(self, error: ViaError) -> None:
        for sequence, state in list(self._ops.items()):
            waiter = state.waiter
            if waiter is not None and not waiter.triggered:
                self.stats["aborted"] += 1
                del self._ops[sequence]
                waiter.fail(error)
            elif waiter is None:
                # Pure NIC-side relay state: nobody to wake, just drop.
                del self._ops[sequence]

    def on_peer_dead(self, dead_rank: int, reason: str = "") -> None:
        """Abort in-flight collectives: a participant died mid-wave."""
        self._unacked.pop(dead_rank, None)
        self._fail_pending(ViaError(
            f"node {self.rank}: NIC collective aborted, node "
            f"{dead_rank} {reason or 'declared dead'}"
        ))

    def on_local_crash(self, reason: str = "node crashed") -> None:
        self._unacked.clear()
        self._fail_pending(ViaError(
            f"node {self.rank}: NIC collective aborted, local {reason}"
        ))

    # -- user API ------------------------------------------------------

    def collective(self, mode: str, root: int, value: Any,
                   op: Optional[Callable], nbytes: int):
        """Process: run one NIC-resident collective; returns the result.

        ``mode`` is ``"combine"`` (allreduce / barrier with the NULL
        op), ``"reduce"`` (root-only result) or ``"bcast"``.  The usual
        MPI collective-call discipline applies: every rank calls in the
        same order with the same mode/root/op, which is what keeps the
        per-node sequence counters aligned without negotiation.
        """
        if mode not in ("combine", "reduce", "bcast"):
            raise ViaError(f"node {self.rank}: unknown NIC collective "
                           f"mode {mode!r}")
        self._check_alive()
        self._sequence += 1
        sequence = self._sequence
        state = self._state(sequence, mode, root)
        state.op = op
        state.nbytes = nbytes
        self.stats["collectives"] += 1
        sim = self.sim
        rec = sim.recorder
        if rec is not None:
            state.trace = rec.start_trace(
                f"nicoll-{mode}-{sequence}", f"n{self.rank}", sim.now)
            t0 = sim.now
        # The deposit: one user-space doorbell write, no kernel entry.
        yield from self.device.host.cpu_work(DOORBELL_COST, PRIO_USER)
        if rec is not None:
            rec.span(state.trace, _API_CALL, "nic-doorbell",
                     f"n{self.rank}", t0, sim.now)
        if mode == "bcast" and self.rank == root:
            # Root broadcast: the value is already host-visible; wave
            # it down and return without waiting (no IRQ needed).
            self._wave_down(sequence, state, value)
            del self._ops[sequence]
            return value
        if mode == "bcast" and state.done:
            # The wave beat our deposit; the result already sits in
            # mapped NIC memory, so the doorbell read returns it.
            result = state.result
            del self._ops[sequence]
            return result
        needs_wait = not (mode == "reduce" and state.parent is not None)
        if needs_wait:
            state.waiter = sim.event(name=f"nicoll[{self.rank}]")
        if mode != "bcast":
            self._deposit_local(sequence, state, value)
        if not needs_wait:
            # Non-root reduce: the NIC finishes the relay on its own.
            return None
        result = yield state.waiter
        self._ops.pop(sequence, None)
        return result

    # -- NIC state machine ---------------------------------------------

    def _deposit_local(self, sequence: int, state: _OpState,
                       value: Any) -> None:
        state.value_local = value
        state.have_local = True
        self._advance(sequence, state)

    def _advance(self, sequence: int, state: _OpState) -> None:
        """Subtree-completion check for the reduce-up direction."""
        if not state.have_local:
            return
        if len(state.child_values) < len(state.children):
            return
        # Canonical fold: local contribution, then children in tree
        # order — the same order the host-tier tree folds in.
        value = state.value_local
        op = state.op
        for child in state.children:
            value = op(value, state.child_values[child])
        if state.parent is None:
            if state.mode == "reduce":
                self._complete_local(sequence, state, value)
            else:
                self._wave_down(sequence, state, value)
        else:
            self._send(PacketKind.NIC_REDUCE, state.parent, sequence,
                       state, value)
            if state.mode == "reduce":
                # Relay done; nothing further reaches this node.
                self._ops.pop(sequence, None)

    def _wave_down(self, sequence: int, state: _OpState,
                   value: Any) -> None:
        for child in state.children:
            self._send(PacketKind.NIC_CBCAST, child, sequence, state,
                       value)
        self._complete_local(sequence, state, value)

    def _complete_local(self, sequence: int, state: _OpState,
                        value: Any) -> None:
        state.result = value
        state.done = True
        if state.waiter is None:
            # bcast wave arrived before the local call deposited: stash
            # the result; the doorbell will pick it up with no IRQ.
            return
        self.stats["completions"] += 1
        self.device.host.irq.raise_irq(
            [(self._complete_handler, (sequence, value, state.trace))],
            source=f"nicoll{self.rank}",
        )

    def _complete_handler(self, item):
        """IRQ handler: the one host interrupt of a NIC collective."""
        sequence, value, trace = item
        sim = self.sim
        yield sim.timeout(NIC_COMPLETE_COST)
        rec = sim.recorder
        if rec is not None and trace is not None:
            rec.event(trace, _COMPLETION, "nic-collective",
                      f"n{self.rank}", sim.now)
        state = self._ops.get(sequence)
        if state is None:
            return
        waiter = state.waiter
        if waiter is not None and not waiter.triggered:
            sim.progress += 1
            waiter.succeed(value)

    # -- rx path (port hook, called from GigEPort._rx_loop) ------------

    def handle_rx(self, frame: Frame) -> bool:
        """Synchronous port hook; True = frame consumed by the NIC."""
        packet = frame.payload
        if not isinstance(packet, ViaPacket):
            return False
        if packet.kind not in NIC_COLLECTIVE_KINDS:
            return False
        if packet.dst_node != self.rank:
            # Multi-hop detour (degraded routing): let the host switch
            # forward it like any transit frame.
            return False
        self.stats["frames"] += 1
        if self._local_dead():
            # A crashed node's NIC is silent.
            self.stats["dropped_dead"] += 1
            return True
        if frame.corrupted or not packet.verify():
            self.stats["dropped_bad_checksum"] += 1
            return True
        health = self.device._fabric_health
        if (health is not None
                and getattr(health, "has_node_faults", False)
                and not health.node_alive(packet.src_node)):
            # Late frame from a declared-dead peer: ghost traffic.
            self.stats["dropped_dead"] += 1
            return True
        if packet.kind is PacketKind.NIC_ACK:
            self.stats["acks_received"] += 1
            self._apply_ack(packet.src_node, packet.ack)
            return True
        if packet.seq >= 0:
            expected = self._rx_next.get(packet.src_node, 0)
            if packet.seq != expected:
                if packet.seq < expected:
                    self.stats["dup_frames"] += 1
                else:
                    self.stats["ooo_dropped"] += 1
                self._send_ack(packet.src_node)
                return True
            self._rx_next[packet.src_node] = expected + 1
            self._send_ack(packet.src_node)
        self.sim.spawn(self._rx(packet),
                       name=f"nicoll-rx[{self.rank}]")
        return True

    def _rx(self, packet: ViaPacket):
        """Process: NIC firmware handling of one accepted frame."""
        sim = self.sim
        sequence, mode, root, value = packet.payload
        t0 = sim.now
        rec = sim.recorder
        if packet.kind is PacketKind.NIC_REDUCE:
            yield sim.timeout(NIC_RX_COST + NIC_COMBINE_COST)
            if rec is not None and packet.trace is not None:
                rec.span(packet.trace, _NIC_COMBINE, f"n{self.rank}",
                         f"n{self.rank}", t0, sim.now)
            self.stats["combines"] += 1
            state = self._state(sequence, mode, root)
            state.nbytes = max(state.nbytes, packet.payload_bytes)
            state.child_values[packet.src_node] = value
            self._advance(sequence, state)
        else:  # NIC_CBCAST
            yield sim.timeout(NIC_RX_COST)
            state = self._state(sequence, mode, root)
            state.nbytes = max(state.nbytes, packet.payload_bytes)
            if state.trace is None:
                # Pure wave relay (bcast before the local call): carry
                # the incoming trace so forward spans stay attributed.
                state.trace = packet.trace
            self._wave_down(sequence, state, value)

    # -- tx path -------------------------------------------------------

    def _send(self, kind: PacketKind, dst: int, sequence: int,
              state: _OpState, value: Any) -> None:
        nbytes = state.nbytes
        packet = ViaPacket(
            kind=kind,
            src_node=self.rank,
            dst_node=dst,
            dst_vi=0,
            msg_id=self.device.next_msg_id(),
            payload_bytes=nbytes,
            payload=(sequence, state.mode, state.root, value),
        )
        if self.device.reliable:
            seq = self._tx_next.get(dst, 0)
            self._tx_next[dst] = seq + 1
            packet.seq = seq
            packet.seal()
            self._unacked.setdefault(dst, {})[seq] = packet
            self._arm_rto(dst)
        else:
            packet.seal()
        if self.sim.recorder is not None:
            packet.trace = state.trace
        self.stats["forwards"] += 1
        self.sim.spawn(self._transmit(dst, packet.clone(), state.trace),
                       name=f"nicoll-tx[{self.rank}]")

    def _transmit(self, dst: int, packet: ViaPacket, trace):
        """Process: firmware tx step + FIFO injection of one frame."""
        sim = self.sim
        t0 = sim.now
        yield sim.timeout(NIC_TX_COST)
        try:
            port = self.device.egress_port(dst, packet=packet)
        except ViaError:
            # Destination unreachable (death partitioned it off): drop;
            # the failure notice aborts the op at every waiter.
            return
        rec = sim.recorder
        if rec is not None and trace is not None:
            rec.span(trace, _NIC_FORWARD, f"n{self.rank}->n{dst}",
                     f"n{self.rank}", t0, sim.now)
        frame = Frame(packet.payload_bytes,
                      self.device.params.header_bytes,
                      payload=packet, kind=f"via-{packet.kind.value}")
        yield from port.nic_inject_tx(frame)

    # -- NIC-level go-back-N -------------------------------------------

    def _send_ack(self, dst: int) -> None:
        packet = ViaPacket(
            kind=PacketKind.NIC_ACK,
            src_node=self.rank,
            dst_node=dst,
            dst_vi=0,
            msg_id=self.device.next_msg_id(),
            payload_bytes=0,
            ack=self._rx_next.get(dst, 0) - 1,
            payload=(0, "ack", 0, None),
        ).seal()
        self.stats["acks_sent"] += 1
        self.sim.spawn(self._transmit(dst, packet, None),
                       name=f"nicoll-ack[{self.rank}]")

    def _apply_ack(self, peer: int, ack: int) -> None:
        unacked = self._unacked.get(peer)
        if not unacked:
            return
        progressed = False
        for seq in [s for s in unacked if s <= ack]:
            del unacked[seq]
            progressed = True
        if progressed:
            self._retries[peer] = 0

    def _arm_rto(self, dst: int) -> None:
        if dst in self._rto_armed:
            return
        self._rto_armed.add(dst)
        self.sim.spawn(self._rto_loop(dst),
                       name=f"nicoll-rto[{self.rank}->{dst}]")

    def _rto_loop(self, dst: int):
        """Process: per-peer retransmission timer (go-back-N)."""
        params = self.device.params
        sim = self.sim
        try:
            while True:
                unacked = self._unacked.get(dst)
                if not unacked:
                    return
                retries = self._retries.get(dst, 0)
                rto = min(
                    params.rel_rto * (params.rel_rto_backoff ** retries),
                    params.rel_rto_max,
                )
                before = min(self._unacked.get(dst) or [0], default=0)
                yield sim.timeout(rto)
                unacked = self._unacked.get(dst)
                if not unacked:
                    return
                if min(unacked) > before:
                    continue  # progress while we slept; fresh timer
                retries = self._retries.get(dst, 0) + 1
                self._retries[dst] = retries
                if retries > params.rel_max_retries:
                    self._peer_unresponsive(dst)
                    return
                for seq in sorted(unacked):
                    self.stats["retransmits"] += 1
                    sim.spawn(
                        self._transmit(dst, unacked[seq].clone(),
                                       unacked[seq].trace),
                        name=f"nicoll-rtx[{self.rank}->{dst}]",
                    )
        finally:
            self._rto_armed.discard(dst)

    def _peer_unresponsive(self, dst: int) -> None:
        """Retry budget exhausted: out-of-band death evidence."""
        self._unacked.pop(dst, None)
        fd = getattr(self.device.agent, "_fd", None)
        if fd is not None:
            # The failure detector declares the death; its notice comes
            # back through on_peer_dead and aborts every waiter.
            fd.suspect(dst, "NIC collective retry budget exhausted")
        else:
            self._fail_pending(ViaError(
                f"node {self.rank}: NIC collective peer {dst} "
                f"unresponsive (retry budget exhausted)"
            ))
