"""Hardware calibration constants.

Every number here is either taken directly from the paper, derived from
the published hardware specs of the era (Pentium 4 Xeon 2.67 GHz,
Intel Pro/1000MT on PCI-X, Myrinet LaNai9), or tuned so that the
*paper's own reported measurements* come out of the model:

* M-VIA small-message RTT/2 ~= 18.5 us (paper section 4.1, 5.1)
* M-VIA send+receive host overhead ~= 6 us (section 4.1)
* kernel packet switch per-hop latency ~= 12.5 us (section 5.1)
* M-VIA simultaneous per-link send bandwidth ~= 110 MB/s (section 4.1)
* TCP latency >= 30 % above M-VIA; simultaneous bandwidth ~37 % below
  (section 4.1)
* 2-D aggregated bandwidth flattening ~400 MB/s; 3-D peaking ~550 MB/s
  and falling toward ~400 MB/s at large sizes (section 4.2)

Parameters are frozen dataclasses so experiment configs can't mutate a
shared default by accident; ablations build modified copies with
``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.canonical import Canonical
from repro.hw.faults import FaultParams


@dataclass(frozen=True)
class HostParams(Canonical):
    """Per-node host (CPU + memory system) parameters."""

    #: CPU clock, for reference only (GHz). Cluster A: 2.67, B: 3.0.
    cpu_ghz: float = 2.67
    #: Memory copy bandwidth seen by protocol copies (bytes/us == MB/s).
    #: DDR-era P4 Xeon sustained copy rate ~1.2 GB/s.
    copy_rate: float = 1200.0
    #: Memory-bus total bandwidth shared by DMA and copies (MB/s).
    #: 533 MHz FSB era chipset, ~3.2 GB/s peak, ~2.1 GB/s sustained.
    membus_rate: float = 2100.0
    #: Fluid-share weight of CPU copies relative to device DMA (memory
    #: controllers prioritize CPU traffic; without this a single copy
    #: under 12-stream DMA load would starve at an equal share).
    copy_bus_weight: float = 5.0
    #: Fixed cost of taking a hardware interrupt (context switch,
    #: handler entry/exit). "expensive kernel interrupts" (section 4.1).
    interrupt_cost: float = 1.5
    #: Per-frame work inside the interrupt handler (ring scan, refill).
    interrupt_per_frame: float = 0.35
    #: Cost of a syscall crossing (TCP path only; VIA bypasses).
    syscall_cost: float = 1.1
    #: NAPI-style interrupt mitigation (paper section 7's "possible
    #: new M-VIA feature, similar to the NAPI"): after draining, the
    #: handler keeps polling for this long before re-arming the
    #: interrupt.  0 = classic interrupt-per-batch behavior.
    napi_poll_window: float = 0.0
    #: Memory in MB (cluster A nodes had 256 MB).
    memory_mb: int = 256


@dataclass(frozen=True)
class GigEParams(Canonical):
    """Intel Pro/1000MT-class copper GigE port on PCI-X."""

    #: Wire signalling rate (bytes/us). 1 Gb/s = 125 MB/s.
    wire_rate: float = units.GIGE_WIRE_RATE
    #: Ethernet payload per frame.
    mtu: int = units.ETHERNET_MTU
    #: Non-payload wire bytes per frame (headers, FCS, preamble, IFG).
    frame_overhead: int = units.ETHERNET_WIRE_OVERHEAD
    #: Cable + PHY + serdes propagation (us). Cat-6 a few meters.
    propagation: float = 0.30
    #: NIC per-descriptor processing on transmit, not overlapped with
    #: serialization (descriptor fetch, header build). Tuned so a
    #: saturated link sustains ~110 MB/s of user payload (section 4.1).
    tx_proc: float = 0.9
    #: NIC per-frame receive processing before DMA.
    rx_proc: float = 0.9
    #: Transmit/receive descriptor ring sizes. The paper's driver was
    #: loaded with 2048 + 2048 (section 3).
    tx_ring: int = 2048
    rx_ring: int = 2048
    #: Interrupt coalescing ("interrupt delay" tuning, section 3):
    #: an rx interrupt fires `coalesce_delay` us after the first
    #: undelivered frame, or immediately at `coalesce_frames` pending.
    coalesce_delay: float = 6.9
    coalesce_frames: int = 10
    #: Hardware checksum offload (the Jlab driver change, section 4).
    hw_checksum: bool = True
    #: Software checksum cost per byte when offload is off (us/byte).
    sw_checksum_per_byte: float = 0.0009
    #: PCI-X DMA: bus rate handled by BandwidthBus; per-transfer setup.
    dma_setup: float = 0.25
    #: Fault injection: damage every Nth frame per link direction
    #: (None = healthy wire).  Deterministic for reproducibility.
    corrupt_every: Optional[int] = None
    #: Generalized fault schedule (loss, flap, death; see
    #: :mod:`repro.hw.faults`).  None falls back to the ambient default
    #: established by ``faults.set_ambient`` / the bench CLI's
    #: ``--loss`` knob; a default-constructed FaultParams is healthy.
    faults: Optional[FaultParams] = None
    #: Port price, US$ (section 3: "$140 each, $420/node").
    price_per_port: float = 140.0

    def min_wire_latency(self) -> float:
        """Lower bound on any frame's link latency (microseconds).

        Serialization of a minimum-size Ethernet frame plus the
        propagation delay: no frame — not even a padded-out ACK — can
        cross a link faster than this.  The PDES engine uses it as the
        conservative-synchronization lookahead for cut links, so the
        window bound is *derived* from the calibrated wire model rather
        than hard-coded (see ``docs/PDES.md``).
        """
        # Mirrors Frame.wire_bytes for an empty body: Ethernet pads to
        # the 64-byte minimum (46 bytes of body space) before framing
        # overhead is added.
        min_wire_bytes = (units.ETHERNET_MIN_FRAME - 18) + self.frame_overhead
        return min_wire_bytes / self.wire_rate + self.propagation


@dataclass(frozen=True)
class ViaParams(Canonical):
    """Modified M-VIA protocol costs (user-level library + kernel agent)."""

    #: VIA header bytes inside the Ethernet payload.
    header_bytes: int = 42
    #: Send-side host overhead: build descriptor, ring doorbell.
    send_overhead: float = 2.68
    #: Receive-side host overhead: completion queue pop, descriptor
    #: recycle.  send+recv ~= 6 us total (section 4.1).
    recv_overhead: float = 3.68
    #: The single receive-side memory copy M-VIA performs (section 4.1
    #: "one memory copy on receiving"); rate from HostParams.copy_rate.
    recv_copy: bool = True
    #: Kernel packet-switch forwarding cost per frame at interrupt
    #: level (section 5.1: 12.5 us/hop node-to-node routing latency;
    #: most of that is the rx interrupt + tx path, this is the extra
    #: table lookup + descriptor splice).
    switch_forward_cost: float = 0.68
    #: Per-frame demultiplex cost in the rx interrupt handler (find the
    #: VI, sequence check, completion bookkeeping).
    rx_demux_cost: float = 0.3
    #: Verify per-packet checksums on receive (the Jlab modification;
    #: disabling it models stock M-VIA, which silently accepts wire
    #: damage — the fault-injection tests show the difference).
    verify_checksums: bool = True
    #: Maximum outstanding descriptors per VI send queue.
    send_queue_depth: int = 256
    recv_queue_depth: int = 256
    #: Reliable-delivery protocol (go-back-N sequence/ACK recovery in
    #: the kernel agent).  None = auto: engage exactly when some link
    #: of the node can *lose* frames (loss/flap/death/corrupt-rate
    #: knobs in :class:`~repro.hw.faults.FaultParams`); legacy
    #: ``corrupt_every`` keeps its detect-and-drop-only semantics.
    reliable: Optional[bool] = None
    #: Go-back-N send window per VI, in frames.
    rel_window: int = 64
    #: Initial retransmission timeout (us).  Must comfortably exceed
    #: RTT + the receiver's delayed-ACK window.
    rel_rto: float = 300.0
    #: Exponential backoff multiplier and RTO ceiling (us).
    rel_rto_backoff: float = 2.0
    rel_rto_max: float = 5000.0
    #: Consecutive timeouts without ACK progress before the VI is
    #: transitioned to ERROR and pending sends fail (the VIA error
    #: surface of an unrecoverable link).
    rel_max_retries: int = 10
    #: Delayed-ACK coalescing: ACK after ``rel_ack_every`` in-order
    #: frames, or ``rel_ack_delay`` us after the first unACKed one.
    rel_ack_every: int = 4
    rel_ack_delay: float = 25.0
    #: Failure detector (engaged only when the cluster carries
    #: :class:`~repro.hw.faults.NodeFaultSpec` node faults): keepalive
    #: period between torus neighbors, and the silence threshold after
    #: which a neighbor is declared dead.  The timeout must exceed the
    #: worst transient NIC stall the deployment wants to ride out.
    fd_interval: float = 200.0
    fd_timeout: float = 1000.0


@dataclass(frozen=True)
class TcpParams(Canonical):
    """Linux 2.4-era kernel TCP/IP stack costs over the same GigE port."""

    #: TCP/IP header bytes per segment (IP 20 + TCP 20 + options 12).
    header_bytes: int = 52
    #: Sender kernel path per message: socket locking, sk_buff setup,
    #: segmentation entry (syscall cost is in HostParams).
    send_overhead: float = 3.2
    #: Per-byte copy user->kernel on send (in addition to DMA).
    send_copy: bool = True
    #: Receiver per-message path: socket wakeup, scheduler latency back
    #: to the blocked reader.
    recv_overhead: float = 3.6
    #: Per-segment transmit-side protocol processing (TCP output, IP,
    #: queueing discipline).
    per_segment_tx: float = 5.3
    #: Per-segment receive-side protocol processing (softirq: IP input,
    #: TCP input, socket queueing).
    per_segment_rx: float = 6.9
    #: Copies on receive: NIC->kernel buffer (DMA) then kernel->user.
    recv_copy: bool = True
    #: ACK build/processing cost per ACK (each side).
    ack_cost: float = 0.6
    #: Segments per ACK (delayed ACK every 2 segments; end-of-message
    #: segments are ACKed immediately).
    segments_per_ack: int = 2
    #: Send-window / socket-buffer bytes in flight before blocking.
    window_bytes: int = 262144
    #: Kernel IP-forwarding cost per packet for non-nearest-neighbor
    #: routes (the MPICH-P4 "careful routing table" configuration).
    ip_forward_cost: float = 2.6


@dataclass(frozen=True)
class MyrinetParams(Canonical):
    """Myrinet LaNai9 + Myrinet 2000 switch comparator (section 3, 6).

    Published GM-over-LaNai9 numbers of the period: ~7-9 us one-way
    latency, ~240 MB/s unidirectional bandwidth (2+2 Gb/s links).
    """

    #: One-way small-message latency through one switch (us).
    latency: float = 8.5
    #: Per-link bandwidth (bytes/us).
    bandwidth: float = 245.0
    #: Extra latency per additional switch element.
    per_switch_hop: float = 0.5
    #: Host send+recv overhead (OS-bypass GM, very low).
    host_overhead: float = 2.2
    #: Port price including switch amortization, US$ (section 3).
    price_per_port: float = 1000.0


def default_host() -> HostParams:
    """Cluster A node: single P4 Xeon 2.67 GHz, 256 MB."""
    return HostParams()


def default_gige() -> GigEParams:
    """Intel Pro/1000MT port as tuned by the Jlab driver."""
    return GigEParams()


def default_via() -> ViaParams:
    """Modified M-VIA 1.2 defaults."""
    return ViaParams()


def default_tcp() -> TcpParams:
    """RedHat 9 / kernel 2.4.20 TCP over the same adapters."""
    return TcpParams()


def default_myrinet() -> MyrinetParams:
    """LaNai9 + Myrinet 2000 Clos switch."""
    return MyrinetParams()
