"""Broadcast: dimension-order tree on the torus (paper section 5.2).

"A broadcast is implemented via a simple algorithm that a broadcast
message travels along a x axis first, then cross an xy plane and
finally through all yz planes."  Every node receives from its parent,
then forwards to all of its children concurrently (multi-port).
Small-message cost is ~steps x per-hop latency: ~20 us per step, ~200
us on the 4x8x8 machine (10 steps) — Figure 5.
"""

from __future__ import annotations

from typing import Any

from repro.collectives.tree import (
    binomial_children,
    binomial_parent,
    dimension_order_children,
    dimension_order_parent,
)
from repro.mpi.request import waitall

#: Collective tags (the collective context isolates them from user
#: traffic; ordering within a communicator keeps reuse safe).
TAG_BCAST = 101


def bcast(comm, root: int, nbytes: int, data: Any):
    """Process: SPMD broadcast; returns the broadcast data on every rank."""
    if comm.is_whole_torus:
        torus = comm.torus
        parent = dimension_order_parent(torus, root, comm.rank)
        children = dimension_order_children(torus, root, comm.rank)
    else:
        parent = binomial_parent(comm.size, root, comm.rank)
        children = binomial_children(comm.size, root, comm.rank)
    if comm.rank != root:
        request = comm.coll_irecv(parent, TAG_BCAST, nbytes)
        yield from request.wait()
        data = request.received_data
    sends = [
        comm.coll_isend(child, TAG_BCAST, nbytes, data=data)
        for child in children
    ]
    yield from waitall(sends)
    return data
