"""All-to-all personalized communication.

"Finally an all-to-all personalized communication is implemented as a
parallel execution of every one-to-all personalized communication from
all nodes" (section 5.2).  Each rank injects its p-1 messages directly
(kernel-switch SDF routing) with a rank-offset injection order so that
senders do not all target the same destination simultaneously.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import MpiError
from repro.mpi.request import waitall

TAG_ALLTOALL = 105


def alltoall(comm, nbytes: int, data: Optional[Sequence[Any]]):
    """Process: SPMD all-to-all; returns this rank's received slices
    (list indexed by source rank; own slice passed through)."""
    if data is not None and len(data) != comm.size:
        raise MpiError(
            f"alltoall data has {len(data)} slices for {comm.size} ranks"
        )
    me = comm.rank
    recvs = {
        src: comm.coll_irecv(src, TAG_ALLTOALL, nbytes)
        for src in range(comm.size) if src != me
    }
    sends = []
    for offset in range(1, comm.size):
        dst = (me + offset) % comm.size
        sends.append(
            comm.coll_isend(
                dst, TAG_ALLTOALL, nbytes,
                data=None if data is None else data[dst],
            )
        )
    yield from waitall(sends)
    yield from waitall(list(recvs.values()))
    result: List[Any] = [None] * comm.size
    if data is not None:
        result[me] = data[me]
    for src, request in recvs.items():
        result[src] = request.received_data
    return result
