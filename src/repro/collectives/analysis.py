"""Analytic cost models for the torus collectives (paper section 5.2).

The paper analyzes its collectives by communication *steps*: broadcast
takes ``ceil(x/2) + ceil(y/2) + ceil(z/2)`` dimension-order steps at
roughly one point-to-point latency each ("about 20 us per step");
global combining takes roughly twice that; OPT scatter takes
``max(T1, T2)`` store-and-forward steps.  These functions turn the
step counts into predicted times using the calibrated latency
constants, so the DES results can be checked against the paper's own
arithmetic (and so users can size machines without running the DES).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.schedule import opt_bound
from repro.collectives.tree import tree_depth
from repro.errors import TopologyError
from repro.topology.torus import Torus

#: Calibrated small-message MPI/QMP one-way latency (us) — the paper's
#: 18.5, which is also its observed per-step broadcast cost (~20 with
#: forwarding overhead).
POINT_TO_POINT_LATENCY = 18.5
#: Per-step overhead beyond the raw latency (store-and-forward
#: handling at each relay).
STEP_OVERHEAD = 1.5
#: Interrupt-level per-hop cost for store-and-forward relays (§5.1).
SWITCH_HOP_LATENCY = 12.5
#: Sustained per-link payload rate (MB/s == bytes/us).
LINK_BANDWIDTH = 110.0


@dataclass(frozen=True)
class CollectivePrediction:
    """Predicted steps and time for one collective invocation."""

    steps: int
    time_us: float


def step_time(nbytes: float) -> float:
    """Predicted cost of one tree step at ``nbytes``."""
    return (POINT_TO_POINT_LATENCY + STEP_OVERHEAD
            + nbytes / LINK_BANDWIDTH)


def broadcast_prediction(torus: Torus, nbytes: float = 4.0,
                         root: int = 0) -> CollectivePrediction:
    """Dimension-order broadcast: steps x per-step time.

    For the 4x8x8 at small sizes: 10 steps x ~20 us ~= 200 us —
    Figure 5's headline number.
    """
    steps = tree_depth(torus, root)
    return CollectivePrediction(steps, steps * step_time(nbytes))


def reduce_prediction(torus: Torus, nbytes: float = 4.0,
                      root: int = 0) -> CollectivePrediction:
    """Reduction: the reverse tree, same step count."""
    return broadcast_prediction(torus, nbytes, root)


def global_combine_prediction(torus: Torus, nbytes: float = 4.0,
                              ) -> CollectivePrediction:
    """Global combining = reduce + broadcast: ~2x the broadcast
    ("roughly twice as many communication steps")."""
    single = broadcast_prediction(torus, nbytes)
    return CollectivePrediction(2 * single.steps, 2 * single.time_us)


def scatter_opt_prediction(torus: Torus, nbytes: float = 64.0,
                           root: int = 0) -> CollectivePrediction:
    """OPT scatter: max(T1, T2) store-and-forward steps.

    Steps are paced by the slower of the root's injection period and
    the per-hop relay cost at this message size.
    """
    steps = opt_bound(torus, root)
    per_step = max(SWITCH_HOP_LATENCY, nbytes / LINK_BANDWIDTH)
    # The first message also pays the end-to-end software latency.
    return CollectivePrediction(
        steps, POINT_TO_POINT_LATENCY + steps * per_step
    )


def barrier_prediction(torus: Torus) -> CollectivePrediction:
    """Barrier = global combine with a null reduction."""
    return global_combine_prediction(torus, nbytes=0.0)


def validate_against(torus: Torus, measured_broadcast_us: float,
                     measured_combine_us: float,
                     nbytes: float = 4.0,
                     tolerance: float = 0.35) -> bool:
    """Do measured collective times agree with the step model?

    Used by tests and sanity checks: returns True when both measured
    values sit within ``tolerance`` (relative) of the predictions.
    """
    if measured_broadcast_us <= 0 or measured_combine_us <= 0:
        raise TopologyError("measured times must be positive")
    bcast = broadcast_prediction(torus, nbytes).time_us
    combine = global_combine_prediction(torus, nbytes).time_us
    return (
        abs(measured_broadcast_us - bcast) / bcast <= tolerance
        and abs(measured_combine_us - combine) / combine <= tolerance
    )
