"""Spanning trees for torus collectives.

The paper's broadcast "travels along a x axis first, then cross an xy
plane and finally through all yz planes" — i.e. the spanning tree where
a node's parent lies along the *highest* axis on which it differs from
the root, one hop closer along the minimal ring direction.  The number
of communication steps is roughly ``xdim/2 + ydim/2 + zdim/2``.

Also provides binomial trees for non-torus (sub-communicator)
fallbacks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TopologyError
from repro.topology.torus import Direction, Torus


def dimension_order_parent(torus: Torus, root: int,
                           rank: int) -> Optional[int]:
    """Parent of ``rank`` in the dimension-order tree (None at root)."""
    if rank == root:
        return None
    # offset from rank toward root: the minimal signed displacement.
    offset = torus.offset(rank, root)
    axis = max(a for a, delta in enumerate(offset) if delta != 0)
    direction = Direction(axis, 1 if offset[axis] > 0 else -1)
    return torus.neighbor(rank, direction)


def dimension_order_children(torus: Torus, root: int,
                             rank: int) -> List[int]:
    """Children of ``rank``: neighbors whose parent is ``rank``.

    Ordered with ring-continuation children (same axis as our own
    parent link) first, so pipelines stream without stalls.
    """
    children = []
    for _direction, neighbor in torus.neighbors(rank):
        if neighbor != rank and dimension_order_parent(
                torus, root, neighbor) == rank:
            children.append(neighbor)
    # Deterministic order: farther-from-root children first so the long
    # ring pipelines start as early as possible.
    children.sort(key=lambda n: (-torus.distance(root, n), n))
    # A node can be its own... no: neighbor != rank keeps self out, but
    # on extent-2 wrapped axes both directions reach the same neighbor;
    # de-duplicate while preserving order.
    seen = set()
    unique = []
    for child in children:
        if child not in seen:
            seen.add(child)
            unique.append(child)
    return unique


def tree_depth(torus: Torus, root: int) -> int:
    """Number of tree levels == broadcast steps lower bound.

    For a full torus this is ``sum(ceil(dim/2))`` over axes with
    extent > 1, the paper's step count.
    """
    return max(
        _tree_distance(torus, root, rank) for rank in torus.ranks()
    )


def _tree_distance(torus: Torus, root: int, rank: int) -> int:
    depth = 0
    node = rank
    limit = torus.diameter() + 1
    while node != root:
        parent = dimension_order_parent(torus, root, node)
        if parent is None:  # pragma: no cover - defensive
            raise TopologyError("orphan node in dimension-order tree")
        node = parent
        depth += 1
        if depth > limit:  # pragma: no cover - defensive
            raise TopologyError("dimension-order tree has a cycle")
    return depth


# ---------------------------------------------------------------------------
# Binomial trees (generic fallback for arbitrary groups).
# ---------------------------------------------------------------------------

def binomial_parent(size: int, root: int, rank: int) -> Optional[int]:
    """Parent in a binomial tree over ranks 0..size-1 rooted at root."""
    if not 0 <= rank < size:
        raise TopologyError(f"rank {rank} out of range [0, {size})")
    relative = (rank - root) % size
    if relative == 0:
        return None
    # Clear the lowest set bit of the relative rank.
    parent_rel = relative & (relative - 1)
    return (parent_rel + root) % size


def binomial_children(size: int, root: int, rank: int) -> List[int]:
    """Children in the binomial tree (largest subtree last)."""
    relative = (rank - root) % size
    children = []
    mask = 1
    while mask < size:
        if relative & mask:
            break
        child_rel = relative | mask
        if child_rel < size:
            children.append((child_rel + root) % size)
        mask <<= 1
    return children
