"""Reduction: the reverse of the dimension-order broadcast.

"A reduction behaves very much like a reverse of a broadcast except
that each node carries out some reduction operations, such as sum,
before forwarding the reduced value to its neighbors" (section 5.2).
"""

from __future__ import annotations

from typing import Any

from repro.collectives.tree import (
    binomial_children,
    binomial_parent,
    dimension_order_children,
    dimension_order_parent,
)

TAG_REDUCE = 102


def reduce(comm, root: int, nbytes: int, op, data: Any):
    """Process: SPMD reduce; root returns the combined value, others None."""
    if comm.is_whole_torus:
        torus = comm.torus
        parent = dimension_order_parent(torus, root, comm.rank)
        children = dimension_order_children(torus, root, comm.rank)
    else:
        parent = binomial_parent(comm.size, root, comm.rank)
        children = binomial_children(comm.size, root, comm.rank)
    value = data
    # Receive children's partial results in completion order: post all
    # receives up front (multi-port), combine as they land.
    requests = [
        comm.coll_irecv(child, TAG_REDUCE, nbytes) for child in children
    ]
    for request in requests:
        yield from request.wait()
        value = op(value, request.received_data)
    if parent is not None:
        yield from comm.coll_isend(
            parent, TAG_REDUCE, nbytes, data=value
        ).wait()
        return None
    return value
