"""All-gather: every rank ends with every rank's slice.

Not separately discussed in the paper; composed the way its global
combine is — gather to a root along the dimension-order tree, then
broadcast the assembled list — so costs mirror the §5.2 building
blocks.
"""

from __future__ import annotations

from typing import Any

from repro.collectives.broadcast import bcast
from repro.collectives.gather import gather

ALLGATHER_ROOT = 0


def allgather(comm, nbytes: int, data: Any):
    """Process: SPMD allgather; returns the per-rank list everywhere."""
    slices = yield from gather(comm, ALLGATHER_ROOT, nbytes, data)
    result = yield from bcast(comm, ALLGATHER_ROOT, nbytes * comm.size,
                              slices)
    return result
