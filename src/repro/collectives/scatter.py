"""One-to-all personalized communication (scatter) — paper section 5.2.

Two schedulers:

* **SDF** (Shortest-Direction-First): the root sends each message
  directly, First-Come-First-Serve (rank order); the kernel packet
  switch routes every packet SDF.  Easy to implement, not optimal.
* **OPT**: the mesh is partitioned into one region per root link
  (:mod:`repro.topology.partition`), messages are source-routed along
  region-constrained minimal paths, and within a region the root sends
  Furthest-Distance-First so messages stream behind each other without
  overtaking.  The root needs exactly ``ceil((p-1)/k)`` injection
  steps and every message proceeds without contention — the paper
  proves this optimal and measures it ~4x faster than SDF (Figure 6).

Typical LQCD input staging does this ~25,000 times per run (section
5.2), which is why the paper bothered with an optimal algorithm.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import MpiError
from repro.mpi.request import waitall
from repro.topology.partition import partition_regions, region_send_order
from repro.sim import AllOf

TAG_SCATTER = 103


def _root_world(comm, root: int) -> int:
    return comm.group.world_rank(root)


def scatter(comm, root: int, nbytes, data: Optional[Sequence[Any]],
            algorithm: str = "opt"):
    """Process: SPMD scatter; every rank returns its slice.

    ``nbytes`` may be a single int or a per-destination sequence
    (MPI_Scatterv).
    """
    if algorithm not in ("sdf", "opt"):
        raise MpiError(f"unknown scatter algorithm {algorithm!r}")
    sizes = _sizes(comm, nbytes)
    if comm.rank == root:
        if data is not None and len(data) != comm.size:
            raise MpiError(
                f"scatter data has {len(data)} slices for {comm.size} ranks"
            )
        if algorithm == "opt" and comm.is_whole_torus:
            yield from _scatter_root_opt(comm, root, sizes, data)
        else:
            yield from _scatter_root_sdf(comm, root, sizes, data)
        return data[root] if data is not None else None
    request = comm.coll_irecv(root, TAG_SCATTER, sizes[comm.rank])
    yield from request.wait()
    return request.received_data


def _sizes(comm, nbytes) -> List[int]:
    if isinstance(nbytes, int):
        return [nbytes] * comm.size
    sizes = list(nbytes)
    if len(sizes) != comm.size:
        raise MpiError(
            f"scatterv sizes has {len(sizes)} entries for "
            f"{comm.size} ranks"
        )
    return sizes


def _slice(data, rank):
    return None if data is None else data[rank]


def _scatter_root_sdf(comm, root: int, sizes: List[int], data):
    """FCFS injection, kernel-switch SDF routing."""
    requests = []
    for rank in range(comm.size):
        if rank == root:
            continue
        requests.append(
            comm.coll_isend(rank, TAG_SCATTER, sizes[rank],
                            data=_slice(data, rank))
        )
    yield from waitall(requests)


def _scatter_root_opt(comm, root: int, sizes: List[int], data):
    """Region partition + Furthest-Distance-First source routing."""
    torus = comm.torus
    partition = partition_regions(torus, _root_world(comm, root))
    order = region_send_order(partition)
    region_processes = []
    for direction, members in order.items():
        region_processes.append(
            comm.engine.sim.spawn(
                _send_region(comm, partition, members, sizes, data),
                name=f"opt-scatter:{direction}",
            )
        )
    if region_processes:
        yield AllOf(comm.engine.sim, region_processes)


def _send_region(comm, partition, members: List[int],
                 sizes: List[int], data):
    """Process: stream one region's messages FDF down its root link."""
    requests = []
    for world_rank in members:
        route = tuple(
            step.direction.port for step in partition.routes[world_rank]
        )
        local = comm.group.local_rank(world_rank)
        request = comm.coll_isend(local, TAG_SCATTER, sizes[local],
                                  data=_slice(data, local), route=route)
        # Sequential injection per region keeps the FDF streamline
        # ordering on the wire; waiting for the eager-completion paces
        # injection at copy speed while regions run in parallel.
        yield from request.wait()
        requests.append(request)
    yield from waitall(requests)
