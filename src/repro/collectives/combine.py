"""Global combining (allreduce) and barrier.

"A basic scheme of global combining algorithm is based on first
reducing all messages to a node which then broadcasts the reduced
value to all the other nodes.  This algorithm takes roughly twice as
many communication steps as the broadcast algorithm does.  A barrier
synchronization is implemented as global combining with a null
reduction" (section 5.2).  Figure 5's global-sum curve is ~2x the
broadcast curve, which this construction reproduces by design.
"""

from __future__ import annotations

from typing import Any

from repro.collectives.broadcast import bcast
from repro.collectives.reduce import reduce as _reduce

#: The paper reduces to "a node"; rank 0 is the conventional choice.
COMBINE_ROOT = 0


def allreduce(comm, nbytes: int, op, data: Any):
    """Process: SPMD global combine; every rank returns the result."""
    combined = yield from _reduce(comm, COMBINE_ROOT, nbytes, op, data)
    result = yield from bcast(comm, COMBINE_ROOT, nbytes, combined)
    return result
