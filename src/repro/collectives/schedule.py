"""Analytic step-count scheduler for scatter algorithms.

This is the paper's synchronized-time model of section 5.2: messages
move store-and-forward, one message per link per time step, every node
multi-port (all its links usable simultaneously each step).  It
verifies the combinatorial claims independently of the DES:

* SDF (FCFS selection + Shortest-Direction-First routing) dispatch
  time;
* OPT dispatch time, which must equal ``max(T1, T2) (+ c)`` where
  ``T1 = ceil((p-1)/k)`` is the root injection bound and ``T2`` is the
  maximum route length (plus a small constant c for same-distance
  messages sharing a region);
* the ~4x SDF/OPT gap of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.topology.partition import partition_regions, region_send_order
from repro.topology.routing import sdf_next_direction
from repro.topology.torus import Direction, Torus


@dataclass
class _Message:
    """One scatter message in the step model."""

    dst: int
    node: int
    #: FCFS arrival order at the current node (creation order at root).
    order: int
    #: Remaining source route (OPT) or None (SDF).
    route: Optional[Tuple[Direction, ...]] = None
    delivered_step: Optional[int] = None


@dataclass
class ScheduleResult:
    """Outcome of a step-model run."""

    steps: int
    #: Per-destination delivery step.
    delivery: Dict[int, int] = field(repr=False, default_factory=dict)
    #: Total message-hops taken (work).
    hops: int = 0

    def max_delivery(self) -> int:
        return max(self.delivery.values(), default=0)


def _run(torus: Torus, root: int, messages: List[_Message],
         max_steps: Optional[int] = None) -> ScheduleResult:
    """Advance the synchronized model until all messages deliver."""
    limit = max_steps or (torus.size * torus.diameter() + 10)
    active = [m for m in messages if m.node != m.dst]
    for m in messages:
        if m.node == m.dst:
            m.delivered_step = 0
    step = 0
    hops = 0
    while active:
        step += 1
        if step > limit:
            raise TopologyError(
                f"scatter schedule did not converge in {limit} steps"
            )
        # Each link (node, direction) carries one message per step.
        used_links = set()
        moves = []
        # FCFS per node: messages in arrival order.
        for message in sorted(active, key=lambda m: (m.node, m.order)):
            if message.route is not None:
                direction = message.route[0]
            else:
                direction = sdf_next_direction(
                    torus, message.node, message.dst
                )
            if direction is None:  # pragma: no cover - defensive
                raise TopologyError("active message with no direction")
            link = (message.node, direction)
            if link in used_links:
                continue  # the link is taken this step; wait
            used_links.add(link)
            moves.append((message, direction))
        for message, direction in moves:
            message.node = torus.neighbor(message.node, direction)
            if message.route is not None:
                message.route = message.route[1:] or None
            hops += 1
            if message.node == message.dst:
                message.delivered_step = step
        active = [m for m in active if m.node != m.dst]
    delivery = {m.dst: m.delivered_step for m in messages}
    return ScheduleResult(steps=step, delivery=delivery, hops=hops)


def sdf_schedule(torus: Torus, root: int) -> ScheduleResult:
    """SDF scatter in the step model: FCFS selection in rank order."""
    messages = [
        _Message(dst=rank, node=root, order=index)
        for index, rank in enumerate(
            r for r in torus.ranks() if r != root
        )
    ]
    return _run(torus, root, messages)


def opt_schedule(torus: Torus, root: int) -> ScheduleResult:
    """OPT scatter: region partition, FDF injection, source routes."""
    partition = partition_regions(torus, root)
    order = region_send_order(partition)
    messages: List[_Message] = []
    # Injection order: within each region FDF; regions interleave at
    # the root via distinct links, so their FCFS orders are
    # independent.  Encode region-local order in `order`.
    for direction, members in order.items():
        for index, world in enumerate(members):
            route = tuple(
                step.direction for step in partition.routes[world]
            )
            messages.append(
                _Message(dst=world, node=root, order=index, route=route)
            )
    return _run(torus, root, messages)


def opt_bound(torus: Torus, root: int) -> int:
    """The paper's optimality bound ``max(T1, T2)``.

    T1 = ceil((p-1)/k) root-injection steps; T2 = max distance (the
    ``+c`` constant is reported by :func:`opt_schedule` itself).
    """
    ports = len([
        d for d in torus.directions() if torus.has_neighbor(root, d)
    ])
    p = torus.size
    t1 = -(-(p - 1) // ports)
    t2 = max(torus.distance(root, r) for r in torus.ranks())
    return max(t1, t2)
