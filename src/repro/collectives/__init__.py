"""Torus collective-communication algorithms (paper section 5.2).

Every algorithm exists in two forms:

* an **executable** SPMD form — per-rank generator subroutines invoked
  through :class:`repro.mpi.Communicator` methods, running on the
  simulated cluster (store-and-forward through the six GigE links,
  multi-port concurrency, real protocol costs);
* an **analytic** step-count form (:mod:`repro.collectives.schedule`)
  matching the paper's synchronized-step k-port model, used to verify
  the OPT optimality bound ``max(T1, T2)`` and the SDF comparison.

Algorithms:

* dimension-order broadcast (x line, then xy plane, then the volume);
* reduction as its reverse with combining;
* global combine (allreduce) = reduce + broadcast; barrier = combine
  with a null reduction;
* one-to-all personalized communication (scatter) with the SDF and OPT
  schedulers, gather as the reverse, and all-to-all personalized as a
  parallel scatter from every node.
"""

from repro.collectives import (  # noqa: F401 (re-export modules)
    allgather,
    alltoall,
    analysis,
    broadcast,
    combine,
    gather,
    reduce,
    scan,
    scatter,
    schedule,
    tree,
)

__all__ = [
    "allgather",
    "analysis",
    "broadcast",
    "scan",
    "reduce",
    "combine",
    "scatter",
    "gather",
    "alltoall",
    "schedule",
    "tree",
]
