"""Prefix reduction (MPI_Scan) and reduce-scatter.

Neither appears in the paper; they complete the MPI 1.1 collective
surface.  Scan runs as a rank-ordered chain (each rank combines its
value with the prefix from rank-1 and forwards), which maps well onto
the mesh when ranks are laid out row-major: most chain neighbors are
mesh nearest neighbors.  Reduce-scatter composes the paper's reduction
with its scatter.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import MpiError

TAG_SCAN = 106


def scan(comm, nbytes: int, op, data: Any):
    """Process: inclusive prefix reduction over ranks 0..size-1.

    Rank r returns op(data_0, ..., data_r).
    """
    value = data
    if comm.rank > 0:
        request = comm.coll_irecv(comm.rank - 1, TAG_SCAN, nbytes)
        yield from request.wait()
        value = op(request.received_data, value)
    if comm.rank < comm.size - 1:
        yield from comm.coll_isend(comm.rank + 1, TAG_SCAN, nbytes,
                                   data=value).wait()
    return value


def reduce_scatter(comm, nbytes: int, op,
                   data: Optional[Sequence[Any]]):
    """Process: element-wise reduce a per-rank list, scatter results.

    ``data`` is a list of ``size`` slices on every rank; rank r
    returns op-combined slice r across all ranks.
    """
    if data is not None and len(data) != comm.size:
        raise MpiError(
            f"reduce_scatter data has {len(data)} slices for "
            f"{comm.size} ranks"
        )
    from repro.collectives.reduce import reduce as _reduce
    from repro.collectives.scatter import scatter as _scatter

    # Phase 1: reduce the whole list to rank 0 (the paper's tree).
    combined = yield from _reduce(
        comm, 0, nbytes * comm.size, _listwise(op, comm.size), data
    )
    # Phase 2: scatter the combined slices (OPT when on the torus).
    result = yield from _scatter(comm, 0, nbytes, combined,
                                 algorithm="opt")
    return result


def _listwise(op, size: int):
    """Lift an element operator to act slice-wise on lists."""

    def combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return [op(x, y) for x, y in zip(a, b)]

    return combine
