"""All-to-one personalized communication (gather).

"The algorithm for all-to-one personalized (gather) communication is
simply the reverse of the scatter algorithm" (section 5.2).  For OPT,
each source routes its message along the reverse of its scatter route
(same region structure, so ejection at the root is spread over all
links and arrivals within a region stream without contention).
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import MpiError
from repro.mpi.request import waitall
from repro.topology.partition import partition_regions

TAG_GATHER = 104


def _reverse_route(route) -> tuple:
    """Reverse a scatter route: opposite directions, reverse order."""
    return tuple(
        step.direction.opposite.port for step in reversed(route)
    )


def gather(comm, root: int, nbytes, data: Any,
           algorithm: str = "opt"):
    """Process: SPMD gather; root returns the list of slices (indexed
    by rank; root's own slice included), others None.

    ``nbytes`` may be a single int or a per-source sequence
    (MPI_Gatherv).
    """
    if algorithm not in ("sdf", "opt"):
        raise MpiError(f"unknown gather algorithm {algorithm!r}")
    from repro.collectives.scatter import _sizes

    sizes = _sizes(comm, nbytes)
    use_opt = algorithm == "opt" and comm.is_whole_torus
    if comm.rank == root:
        slices: List[Any] = [None] * comm.size
        slices[root] = data
        requests = [
            comm.coll_irecv(rank, TAG_GATHER, sizes[rank])
            for rank in range(comm.size) if rank != root
        ]
        yield from waitall(requests)
        for request in requests:
            # received_src is a world rank; map back to the group.
            local = comm.group.local_rank(request.received_src)
            slices[local] = request.received_data
        return slices
    route = None
    if use_opt:
        partition = partition_regions(
            comm.torus, comm.group.world_rank(root)
        )
        route = _reverse_route(
            partition.routes[comm.group.world_rank(comm.rank)]
        )
    yield from comm.coll_isend(root, TAG_GATHER, sizes[comm.rank],
                               data=data, route=route).wait()
    return None
