"""Global switch for the steady-state fast path.

The simulator carries two execution strategies for several hot paths
(zero-delay event queues, callback-based bus wakeups and link
deliveries, and the frame-train bulk transmit in
:mod:`repro.hw.fastpath`).  Both strategies must produce bit-identical
experiment tables; the per-event reference path stays authoritative and
``tests/test_fastpath_equivalence.py`` pins the equivalence.

The switch is sampled when a :class:`~repro.sim.Simulator` is created,
so flipping it mid-simulation has no effect on existing simulators.

Disable with ``REPRO_FASTPATH=0`` in the environment, or from code::

    from repro import fastpath
    with fastpath.force(False):
        ...build and run a reference simulation...
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = ("0", "false", "off", "no")

_state = {
    "enabled": os.environ.get("REPRO_FASTPATH", "1").strip().lower()
    not in _FALSY,
}


def enabled() -> bool:
    """Whether new simulators use the fast path."""
    return _state["enabled"]


def set_enabled(value: bool) -> None:
    _state["enabled"] = bool(value)


@contextmanager
def force(value: bool):
    """Temporarily force the fast path on or off (tests/benchmarks)."""
    previous = _state["enabled"]
    _state["enabled"] = bool(value)
    try:
        yield
    finally:
        _state["enabled"] = previous
