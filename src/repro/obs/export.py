"""Exporters for the flight recorder.

Two output shapes:

* :func:`to_chrome_trace` — the Chrome trace-event JSON format (the
  ``{"traceEvents": [...]}`` wrapper with ``X``/``i``/``M`` phases),
  which Perfetto's trace viewer loads directly.  One *process* per
  track (node or link); within a track, slices are grouped into named
  lanes (threads) so concurrent stages stack legibly.
* :func:`breakdown_table` — a per-span-kind latency table
  (count / mean / p50 / p99) plus the per-message host API overhead,
  the quantity the paper reports as ~6 us for Fig. 2.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.recorder import API_CALL, MESSAGE, FlightRecorder
from repro.sim.monitor import Probe

_PHASES = {"X", "i", "M"}


def to_chrome_trace(recorder: FlightRecorder) -> Dict[str, Any]:
    """Render the recorder into a Chrome trace-event JSON object."""
    tracks = {info.track for info in recorder.traces.values()}
    tracks.update(span.track for span in recorder.spans)
    tracks.update(span.track for span in recorder.events)
    pid_of = {track: index + 1 for index, track in enumerate(sorted(tracks))}

    lanes: Dict[tuple, int] = {}
    lane_count: Dict[str, int] = {}

    def tid_of(track: str, lane: str) -> int:
        tid = lanes.get((track, lane))
        if tid is None:
            tid = lane_count.get(track, 0)
            lane_count[track] = tid + 1
            lanes[(track, lane)] = tid
        return tid

    events: List[Dict[str, Any]] = []
    for info in sorted(recorder.traces.values(), key=lambda i: i.trace):
        events.append({
            "name": info.name, "cat": MESSAGE, "ph": "X",
            "ts": info.start, "dur": max(info.end - info.start, 0.0),
            "pid": pid_of[info.track], "tid": tid_of(info.track, "messages"),
            "args": {"trace": info.trace},
        })
    for span in recorder.spans:
        events.append({
            "name": f"{span.kind}:{span.name}", "cat": span.kind, "ph": "X",
            "ts": span.start, "dur": span.end - span.start,
            "pid": pid_of[span.track], "tid": tid_of(span.track, span.kind),
            "args": {"trace": span.trace},
        })
    for span in recorder.events:
        events.append({
            "name": f"{span.kind}:{span.name}", "cat": span.kind, "ph": "i",
            "ts": span.start, "s": "t",
            "pid": pid_of[span.track], "tid": tid_of(span.track, "events"),
            "args": {"trace": span.trace},
        })
    meta: List[Dict[str, Any]] = []
    for track, pid in sorted(pid_of.items(), key=lambda kv: kv[1]):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": track}})
    for (track, lane), tid in sorted(lanes.items(),
                                     key=lambda kv: (pid_of[kv[0][0]], kv[1])):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid_of[track],
                     "tid": tid, "args": {"name": lane}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: FlightRecorder, path: str) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the object."""
    trace = to_chrome_trace(recorder)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return trace


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Check ``trace`` against the trace-event schema; returns problems
    (empty list means valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["missing top-level 'traceEvents' array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid is not an int")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid is not an int")
        if phase == "M":
            if not isinstance(event.get("args", {}).get("name"), str):
                problems.append(f"{where}: metadata without args.name")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts is not a number")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)):
                problems.append(f"{where}: complete event without dur")
            elif duration < 0:
                problems.append(f"{where}: negative dur {duration}")
    return problems


def breakdown_probe(recorder: FlightRecorder) -> Probe:
    """A :class:`Probe` with one kept-sample series per span kind."""
    probe = Probe()
    for span in recorder.spans:
        probe.observe(span.kind, span.end - span.start, keep=True)
    for info in recorder.traces.values():
        probe.observe(MESSAGE, info.end - info.start, keep=True)
    return probe


def api_overhead_per_message(recorder: FlightRecorder) -> float:
    """Mean host API (CPU) microseconds spent per message trace."""
    total = 0.0
    for span in recorder.spans:
        if span.kind == API_CALL:
            total += span.end - span.start
    count = len(recorder.traces)
    return total / count if count else 0.0


def breakdown_table(recorder: FlightRecorder) -> str:
    """Render the per-span-kind latency breakdown as a text table."""
    probe = breakdown_probe(recorder)
    lines = [
        f"{'span kind':<18} {'count':>7} {'mean us':>10} "
        f"{'p50 us':>10} {'p99 us':>10}",
    ]
    for name in probe.names():
        stats = probe.stats(name)
        lines.append(
            f"{name:<18} {stats.count:>7} {stats.mean:>10.3f} "
            f"{probe.percentile(name, 50.0):>10.3f} "
            f"{probe.percentile(name, 99.0):>10.3f}"
        )
    lines.append(
        f"api overhead per message: "
        f"{api_overhead_per_message(recorder):.3f} us "
        f"(paper Fig. 2 host overhead ~6 us)"
    )
    return "\n".join(lines) + "\n"
