"""Message-lifecycle flight recorder.

A :class:`FlightRecorder` hangs off ``Simulator.recorder`` (``None`` by
default, so every instrumentation site is a single attribute load plus
an ``is not None`` test when disabled).  The VIA/MPI entry points
allocate a *trace id* per message; the id rides on the descriptor, the
envelope, and every :class:`~repro.via.packet.ViaPacket` fragment, so
each layer can attach spans to the message that caused the work.

Spans carry no identity beyond their content: a span is the frozen
tuple ``(trace, kind, name, track, start, end)``.  This is deliberate —
the frame-train fast path synthesizes spans in bulk out of event order,
and content-identity is what lets recorder output stay *scheduler-mode
identical* (the same set of spans whether or not trains engage).
Parent/child causality is trace-id membership: every span with trace id
``t`` is a child of trace ``t``'s root, whose extent is maintained as
the running min/max of everything recorded against it.

Times are simulator microseconds throughout.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.monitor import SampleStats

#: Trace ids are namespaced per track: ``(base << TRACK_SHIFT) + seq``
#: where ``base`` is the rank for per-node tracks ("n<rank>") and a
#: CRC-derived constant above any plausible rank otherwise.  Allocation
#: is then a pure function of (track, messages-so-far-on-track), so a
#: sharded simulation — one recorder per shard, each seeing only its
#: own ranks — assigns every message the *same* id the sequential
#: reference does, and per-shard span sets merge without renumbering.
TRACK_SHIFT = 32
_NON_RANK_BASE = 1 << 33


def track_base(track: str) -> int:
    """The trace-id namespace of ``track`` (stable across processes)."""
    if track[:1] == "n" and track[1:].isdigit():
        return int(track[1:])
    return _NON_RANK_BASE + zlib.crc32(track.encode("utf-8", "replace"))

# Span kinds (the lifecycle stages of a message).
MESSAGE = "message"              # root span: one per trace id
API_CALL = "api-call"            # host CPU inside send/recv API calls
DESC_QUEUED = "descriptor-queued"  # instant: descriptor handed to NIC
DMA = "dma"                      # descriptor/payload fetch over PCI-X
WIRE_HOP = "wire-hop"            # serialization + propagation on a link
SWITCH_FORWARD = "switch-forward"  # store-and-forward relay at a hop
IRQ_WAIT = "irq-wait"            # rx DMA done -> IRQ handler entry
COMPLETION = "completion"        # instant: descriptor completed/failed
# NIC-resident collective stages (the host-side terms they replace —
# api-call syscalls, irq-wait per hop — simply do not occur).
NIC_FORWARD = "nic-forward"      # NIC firmware tx of a collective frame
NIC_COMBINE = "nic-combine"      # NIC firmware reduce/combine step

# Reliability event kinds (instants).
RETRANSMIT = "retransmit"
ACK = "ack"
TIMEOUT = "timeout"
DROP = "drop"

SPAN_KINDS = (
    MESSAGE, API_CALL, DESC_QUEUED, DMA, WIRE_HOP, SWITCH_FORWARD,
    IRQ_WAIT, COMPLETION, NIC_FORWARD, NIC_COMBINE, RETRANSMIT, ACK,
    TIMEOUT, DROP,
)


@dataclass(frozen=True)
class Span:
    """One recorded lifecycle stage (``start == end`` for instants)."""

    trace: int
    kind: str
    name: str
    track: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def key(self) -> tuple:
        """Content identity, used for cross-scheduler-mode comparison."""
        return (self.trace, self.kind, self.name, self.track,
                self.start, self.end)

    def describe(self) -> str:
        return (f"span {self.kind}:{self.name} trace={self.trace} "
                f"[{self.start:.3f}..{self.end:.3f}]us")


class TraceInfo:
    """Root record for one message trace."""

    __slots__ = ("trace", "name", "track", "start", "end")

    def __init__(self, trace: int, name: str, track: str, start: float):
        self.trace = trace
        self.name = name
        self.track = track
        self.start = start
        self.end = start

    def describe(self) -> str:
        return (f"trace {self.trace} {self.name!r} on {self.track} "
                f"[{self.start:.3f}..{self.end:.3f}]us")


class MetricsTimeline:
    """Fixed-interval time series built on the Welford accumulator.

    ``observe(series, t, value)`` folds ``value`` into the
    ``int(t // interval)`` bucket of ``series``; each bucket is a
    :class:`~repro.sim.monitor.SampleStats`, so a series exposes mean /
    min / max / count per interval without storing raw samples.
    Observation never yields and never perturbs simulation state.
    """

    def __init__(self, interval: float = 50.0):
        if interval <= 0.0:
            raise ValueError("metrics interval must be positive")
        self.interval = interval
        self.series: Dict[str, Dict[int, SampleStats]] = {}

    def observe(self, series: str, t: float, value: float) -> None:
        buckets = self.series.get(series)
        if buckets is None:
            buckets = self.series[series] = {}
        bucket = int(t // self.interval)
        stats = buckets.get(bucket)
        if stats is None:
            stats = buckets[bucket] = SampleStats()
        stats.add(value)

    def timeline(self, series: str) -> List[tuple]:
        """``[(bucket_start_us, SampleStats), ...]`` in time order."""
        buckets = self.series.get(series, {})
        return [(bucket * self.interval, buckets[bucket])
                for bucket in sorted(buckets)]

    def totals(self, series: str) -> SampleStats:
        """All buckets of ``series`` merged into one accumulator."""
        merged = SampleStats()
        for stats in self.series.get(series, {}).values():
            merged.merge(stats)
        return merged

    def names(self) -> List[str]:
        return sorted(self.series)


class FlightRecorder:
    """Collects spans, instant events and metrics for one simulator."""

    def __init__(self, metrics_interval: float = 50.0):
        self.traces: Dict[int, TraceInfo] = {}
        self.spans: List[Span] = []
        self.events: List[Span] = []
        self.metrics = MetricsTimeline(metrics_interval)
        #: Per-namespace allocation counters (see :func:`track_base`).
        self._base_sequences: Dict[int, int] = {}

    # -- trace lifecycle ------------------------------------------------

    def start_trace(self, name: str, track: str, start: float) -> int:
        """Allocate a trace id for a new message; returns the id.

        Ids are namespaced per track so allocation does not depend on
        cross-track interleaving — the property that keeps sharded and
        sequential runs id-identical (see :data:`TRACK_SHIFT`).
        """
        base = track_base(track)
        seq = self._base_sequences.get(base, 0)
        self._base_sequences[base] = seq + 1
        trace = (base << TRACK_SHIFT) + seq
        self.traces[trace] = TraceInfo(trace, name, track, start)
        return trace

    def _touch(self, trace: int, end: float) -> None:
        info = self.traces.get(trace)
        if info is not None and end > info.end:
            info.end = end

    # -- recording ------------------------------------------------------

    def span(self, trace: int, kind: str, name: str, track: str,
             start: float, end: float) -> None:
        self.spans.append(Span(trace, kind, name, track, start, end))
        self._touch(trace, end)
        if kind == WIRE_HOP:
            self.metrics.observe("link-util:" + track, start, end - start)

    def event(self, trace: int, kind: str, name: str, track: str,
              when: float) -> None:
        self.events.append(Span(trace, kind, name, track, when, when))
        self._touch(trace, when)
        if kind in (RETRANSMIT, ACK, TIMEOUT, DROP):
            self.metrics.observe("rate:" + kind, when, 1.0)

    # -- queries --------------------------------------------------------

    def spans_of(self, trace: int) -> List[Span]:
        return [span for span in self.spans if span.trace == trace]

    def events_of(self, trace: int) -> List[Span]:
        return [span for span in self.events if span.trace == trace]

    def kinds(self) -> set:
        found = {span.kind for span in self.spans}
        found.update(span.kind for span in self.events)
        if self.traces:
            found.add(MESSAGE)
        return found

    def tail(self, track: Optional[str] = None, limit: int = 20) -> List[Span]:
        """The last ``limit`` spans recorded, newest last, optionally
        restricted to one track (used by hang diagnostics)."""
        out: List[Span] = []
        for span in reversed(self.spans):
            if track is None or span.track == track:
                out.append(span)
                if len(out) >= limit:
                    break
        out.reverse()
        return out

    def span_keys(self) -> List[tuple]:
        """Sorted content-identity of every span + event + root.

        Two runs of the same workload — fast path on or off — must
        produce exactly the same list.
        """
        keys = [span.key() for span in self.spans]
        keys.extend(span.key() for span in self.events)
        keys.extend((info.trace, MESSAGE, info.name, info.track,
                     info.start, info.end)
                    for info in self.traces.values())
        keys.sort()
        return keys
