"""Merge per-shard flight recorders into one whole-run recorder.

A sharded (PDES) run gives every shard its own
:class:`~repro.obs.recorder.FlightRecorder`.  Trace ids are namespaced
per track (:func:`~repro.obs.recorder.track_base`), so the shards'
records are disjoint by construction except for one cross-shard
subtlety: a message *born* on shard A (which owns the root
:class:`~repro.obs.recorder.TraceInfo`) accumulates spans on shard B as
its frames cross the boundary — B's ``_touch`` is a no-op because B
never saw the root.  The merge therefore recomputes every root's
extent from the union of spans, which restores exactly the running
max the sequential reference maintained incrementally.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.obs.recorder import FlightRecorder, TraceInfo


def merge_recorders(recorders: Iterable[FlightRecorder]) -> FlightRecorder:
    """One recorder holding every shard's spans, events and metrics.

    The result's ``span_keys()`` equals the sequential engine's for a
    bit-identical workload; span/event lists are key-sorted (shard
    interleaving is not meaningful, content identity is).
    """
    recorders = list(recorders)
    if not recorders:
        return FlightRecorder()
    merged = FlightRecorder(
        metrics_interval=recorders[0].metrics.interval
    )
    for recorder in recorders:
        for trace, info in recorder.traces.items():
            if trace in merged.traces:
                raise ValueError(
                    f"trace id {trace} allocated by two shards "
                    f"({merged.traces[trace].track} vs {info.track})"
                )
            merged.traces[trace] = TraceInfo(
                info.trace, info.name, info.track, info.start
            )
            merged.traces[trace].end = info.end
        merged.spans.extend(recorder.spans)
        merged.events.extend(recorder.events)
        for base, seq in recorder._base_sequences.items():
            if seq > merged._base_sequences.get(base, 0):
                merged._base_sequences[base] = seq
        for series, buckets in recorder.metrics.series.items():
            target = merged.metrics.series.setdefault(series, {})
            for bucket, stats in buckets.items():
                existing = target.get(bucket)
                if existing is None:
                    target[bucket] = stats
                else:
                    existing.merge(stats)
    merged.spans.sort(key=lambda span: span.key())
    merged.events.sort(key=lambda span: span.key())
    # Cross-shard extent repair (see module docstring).
    for span in merged.spans:
        merged._touch(span.trace, span.end)
    for span in merged.events:
        merged._touch(span.trace, span.end)
    return merged


__all__: List[str] = ["merge_recorders"]
