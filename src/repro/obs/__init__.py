"""Observability: message-lifecycle flight recorder and exporters.

``FlightRecorder`` assigns every message a trace id at its QMP/MPI/VIA
entry point and collects lifecycle spans (api-call, descriptor-queued,
dma, wire-hop, switch-forward, irq-wait, completion plus reliability
events) together with fixed-interval metrics timelines.  Attach one to
a simulator via :meth:`repro.cluster.builder.MeshCluster.observability`
and export with :mod:`repro.obs.export`.
"""

from repro.obs.recorder import (
    API_CALL,
    ACK,
    COMPLETION,
    DESC_QUEUED,
    DMA,
    DROP,
    IRQ_WAIT,
    MESSAGE,
    RETRANSMIT,
    SPAN_KINDS,
    SWITCH_FORWARD,
    TIMEOUT,
    WIRE_HOP,
    FlightRecorder,
    MetricsTimeline,
    Span,
    TraceInfo,
)
from repro.obs.export import (
    api_overhead_per_message,
    breakdown_probe,
    breakdown_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "API_CALL",
    "ACK",
    "COMPLETION",
    "DESC_QUEUED",
    "DMA",
    "DROP",
    "IRQ_WAIT",
    "MESSAGE",
    "RETRANSMIT",
    "SPAN_KINDS",
    "SWITCH_FORWARD",
    "TIMEOUT",
    "WIRE_HOP",
    "FlightRecorder",
    "MetricsTimeline",
    "Span",
    "TraceInfo",
    "api_overhead_per_message",
    "breakdown_probe",
    "breakdown_table",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
