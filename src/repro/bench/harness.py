"""Experiment registry and runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.errors import BenchmarkError


@dataclass
class ExperimentResult:
    """One regenerated table/figure: columns, rows, and notes that
    record what the paper reports for the same experiment."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[List[Any]]
    notes: Sequence[str] = field(default_factory=list)

    def render(self) -> str:
        from repro.bench.report import render_table

        return render_table(self.title, self.columns, self.rows,
                            notes=self.notes)

    def csv(self) -> str:
        from repro.bench.report import to_csv

        return to_csv(self.columns, self.rows)

    def column(self, name: str) -> List[Any]:
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise BenchmarkError(
                f"{self.experiment}: no column {name!r}"
            ) from None
        return [row[index] for row in self.rows]


def _registry() -> Dict[str, Callable[[bool], ExperimentResult]]:
    from repro.bench import figures
    from repro.bench.table1 import table1
    from repro.bench import ablations

    return {
        "fig2": figures.fig2,
        "fig3": figures.fig3,
        "fig4": figures.fig4,
        "fig5": figures.fig5,
        "fig6": figures.fig6,
        "routing": figures.routing,
        "table1": table1,
        "ablation-threshold": ablations.eager_threshold,
        "ablation-coalescing": ablations.interrupt_coalescing,
        "ablation-tokens": ablations.token_count,
        "ablation-overhead": ablations.host_overhead,
        "ablation-checksum": ablations.checksum_offload,
        "ablation-kernel-reduce": ablations.kernel_collectives,
        "ablation-napi": ablations.napi,
        "cluster-b": ablations.cluster_b,
        # Meta-experiment: evaluates every encoded paper claim.  Not in
        # EXPERIMENTS (and so not in `all`) since it re-runs the others.
        "conformance": _conformance,
    }


def _conformance(quick: bool) -> "ExperimentResult":
    from repro.bench.conformance import run_conformance

    return run_conformance(quick=quick)


#: Names of all registered experiments.
EXPERIMENTS = (
    "fig2", "fig3", "fig4", "fig5", "fig6", "routing", "table1",
    "ablation-threshold", "ablation-coalescing", "ablation-tokens",
    "ablation-overhead", "ablation-checksum", "ablation-kernel-reduce",
    "ablation-napi", "cluster-b",
)


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id; see :data:`EXPERIMENTS`."""
    registry = _registry()
    if name not in registry:
        raise BenchmarkError(
            f"unknown experiment {name!r}; choose from "
            f"{tuple(registry)}"
        )
    return registry[name](quick)
