"""Table 1: normalized LQCD benchmark and $/Mflops (paper section 6)."""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.lqcd.benchmark import LqcdBenchmark
from repro.lqcd.lattice import LocalLattice


def table1(quick: bool = False) -> ExperimentResult:
    """LQCD Gflops/node and estimated $/Mflops for both machines."""
    if quick:
        bench = LqcdBenchmark(gige_dims=(2, 2, 2), myrinet_hosts=8,
                              myrinet_logical_dims=(2, 2, 2),
                              iterations=3)
        locals_ = [LocalLattice(L, L, L, L) for L in (6, 8)]
    else:
        bench = LqcdBenchmark(gige_dims=(4, 8, 8), myrinet_hosts=128,
                              myrinet_logical_dims=(4, 4, 8),
                              iterations=4)
        locals_ = [LocalLattice(L, L, L, L) for L in (6, 8, 10, 12)]
    rows = []
    for myri, gige in bench.table1(locals_):
        L = myri.local.lx
        rows.append([
            f"{L}^4/node",
            myri.gflops_per_node,
            myri.dollars_per_mflops,
            gige.gflops_per_node,
            gige.dollars_per_mflops,
        ])
    return ExperimentResult(
        experiment="table1",
        title="Table 1: normalized LQCD benchmark and $/Mflops",
        columns=["lattice", "Myrinet Gflops", "Myrinet $/Mflops",
                 "GigE Gflops", "GigE $/Mflops"],
        rows=rows,
        notes=[
            "paper: Myrinet performs a little better per node; GigE "
            "performance grows with lattice size (surface-to-volume); "
            "GigE mesh wins on $/Mflops at production lattice sizes",
            "compute normalized to the same per-node kernel rate on "
            "both machines (paper: 'normalized to a single node for a "
            "fair comparison')",
        ],
    )
