"""Benchmark harness: regenerates every figure and table in the paper.

Experiment ids (see DESIGN.md's per-experiment index):

========  ==========================================================
``fig2``  M-VIA vs TCP point-to-point latency and bandwidth
``fig3``  Aggregated multi-link bandwidth, 2-D and 3-D mesh
``fig4``  MPI/QMP point-to-point latency and aggregated bandwidth
``fig5``  Broadcast and global-sum times on the 4x8x8 torus
``fig6``  Scatter (one-to-all personalized): SDF vs OPT
``table1``  LQCD Gflops/node and $/Mflops, GigE mesh vs Myrinet
``routing``  Non-nearest-neighbor latency: 18.5 + 12.5 (n-1) us
========  ==========================================================

Run ``python -m repro.bench <id> [--quick]`` or use
:func:`repro.bench.harness.run_experiment`.
"""

from repro.bench.harness import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.bench.report import render_table, to_csv

#: Pure programmatic entry points (no stdout/file coupling) resolved
#: lazily so importing :mod:`repro.bench` stays light.  Service workers
#: and the CLI share exactly these code paths.
_LAZY = {
    "run_chaos": ("repro.bench.chaos", "run_chaos"),
    "trace_stats": ("repro.bench.observability", "trace_stats"),
    "breakdown_report": ("repro.bench.observability", "breakdown_report"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "breakdown_report",
    "render_table",
    "run_chaos",
    "run_experiment",
    "to_csv",
    "trace_stats",
]
