"""``python -m repro.bench --telemetry`` — the wall-clock telemetry
report.

Enables the telemetry plane, then drives the three instrumented
subsystems end to end in one process tree:

1. a small concurrent-client load test (router + worker fleet — the
   workers ship their registry snapshots back over the duplex pipes);
2. a sharded PDES run with window checkpoints into a throwaway store
   (window loop + checkpoint capture/write instrumentation), with the
   flight recorder on so the run also yields a *sim-time* track;
3. renders the merged registry (counters, histogram percentiles), the
   event-log tail, and the load-test reconciliation verdict — and,
   with a trace path, writes the unified wall+sim Chrome/Perfetto
   trace and schema-validates it.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from typing import List, Optional

from repro import telemetry
from repro.telemetry.registry import histogram_percentile, top_counters


def telemetry_report(trace_path: Optional[str] = None,
                     quick: bool = False) -> str:
    """Run the instrumented workloads and render the report."""
    from repro.ckpt import CheckpointStore
    from repro.pdes import CheckpointPolicy, run_sharded
    from repro.service import loadtest

    tel = telemetry.enable("bench-telemetry")
    lines: List[str] = ["wall-clock telemetry report"]

    clients = 80 if quick else 240
    distinct = 8 if quick else 24
    report = asyncio.run(loadtest.run_load_test(
        clients=clients, workers=1 if quick else 2, distinct=distinct,
        max_pending=8))
    loadtest.check_report(report)
    section = report["telemetry"]
    lines.append(
        f"  load test: {clients} clients -> "
        f"{report['engine_dispatches']} engine runs, "
        f"{report['router']['cache_hits']} cache hits, "
        f"{report['router']['shed']} shed; telemetry "
        + ("reconciled" if section["reconciled"] else "MISMATCH")
        + f" ({len(section['counters'])} counters)")

    ckpt_root = tempfile.mkdtemp(prefix="repro-bench-tel-")
    try:
        result = run_sharded(
            (2, 2, 2) if quick else (2, 4, 4), workload="aggregate",
            nshards=2, observe=True,
            checkpoint=CheckpointPolicy(every=8,
                                        store=CheckpointStore(ckpt_root)))
        lines.append(
            f"  pdes: {result.windows} windows, "
            f"{result.events_processed} events, "
            f"{result.checkpoints} checkpoints captured")

        snapshot = tel.merged_snapshot()
        lines.append("  top counters:")
        for name, value in top_counters(snapshot, limit=15):
            lines.append(f"    {name:<44} {value}")
        lines.append("  histograms (count / mean / p50 / p99, seconds "
                     "unless the name says otherwise):")
        for name in sorted(snapshot.get("histograms", {})):
            for key, state in sorted(
                    snapshot["histograms"][name].items()):
                label = f"{name}{{{key}}}" if key else name
                lines.append(
                    f"    {label:<44} {state['count']:>6} "
                    f"{state['mean']:.6f} "
                    f"{histogram_percentile(state, 50.0):.6f} "
                    f"{histogram_percentile(state, 99.0):.6f}")
        records = tel.events.tail(5)
        if records:
            lines.append(f"  last {len(records)} events:")
            for record in records:
                lines.append(
                    f"    [{record['level']}] {record['schema']} "
                    f"t={record['t']} {record['msg']}")

        if trace_path:
            from repro.telemetry.export import (
                validate_unified_trace,
                write_unified_trace,
            )

            trace = write_unified_trace(
                tel, trace_path, [("pdes", result.recorder)])
            problems = validate_unified_trace(trace)
            if problems:
                raise RuntimeError(
                    "unified trace failed validation: "
                    + "; ".join(problems[:5]))
            lines.append(
                f"  unified trace: {trace_path} — "
                f"{len(trace['traceEvents'])} events, clock domains "
                f"wall+sim; open at https://ui.perfetto.dev")
    finally:
        shutil.rmtree(ckpt_root, ignore_errors=True)
    return "\n".join(lines) + "\n"


__all__ = ["telemetry_report"]
