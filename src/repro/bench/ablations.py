"""Ablation experiments for the design choices DESIGN.md calls out.

Each ablation flips one of the paper's design decisions and shows the
consequence the decision was made to avoid:

* ``eager_threshold`` — move the 16 KB eager/RMA switch and watch the
  Figure 4 bandwidth jump move with it;
* ``interrupt_coalescing`` — trade latency against aggregated
  bandwidth via the Intel driver's interrupt-delay tuning (section 3);
* ``token_count`` — too few flow-control tokens stall the eager
  pipeline;
* ``host_overhead`` — remove the M-VIA receive copy (the paper's
  stated future-work direction: interrupt-level/zero-copy receives);
* ``checksum_offload`` — software vs hardware per-packet checksum
  (the Jlab driver change, section 4).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.bench import microbench as mb
from repro.bench.harness import ExperimentResult
from repro.cluster.builder import build_mesh
from repro.cluster.process_api import run_mpi
from repro.core.message import CoreParams
from repro.hw.params import GigEParams, ViaParams
from repro.mpi.request import waitall


def _mpi_stream_bandwidth(nbytes: int, params: CoreParams,
                          repeats: int = 8) -> float:
    """Unidirectional MPI bandwidth at one size, given core params."""
    cluster = build_mesh((2,), wrap=False)
    result: Dict[str, float] = {}

    def program(comm):
        sim = comm.engine.sim
        if comm.rank == 0:
            yield from comm.barrier()
            start = sim.now
            sends = [
                comm.isend(1, tag=1, nbytes=nbytes)
                for _ in range(repeats)
            ]
            yield from waitall(sends)
            # Completion of the final receive bounds the stream.
            yield from comm.recv(source=1, tag=2, nbytes=64)
            result["elapsed"] = sim.now - start
        else:
            recvs = [
                comm.irecv(0, tag=1, nbytes=nbytes)
                for _ in range(repeats)
            ]
            yield from comm.barrier()
            yield from waitall(recvs)
            yield from comm.send(0, tag=2, nbytes=4)

    run_mpi(cluster, program, params=params)
    return repeats * nbytes / result["elapsed"]


def eager_threshold(quick: bool = False) -> ExperimentResult:
    """Sweep the eager/rendezvous switch point."""
    thresholds = [4096, 16384] if quick else [4096, 16384, 65536]
    sizes = [2048, 8192, 32768] if quick else [
        2048, 8192, 15000, 20000, 32768, 65536,
    ]
    rows = []
    for nbytes in sizes:
        row: List = [nbytes]
        for threshold in thresholds:
            params = CoreParams(
                eager_threshold=threshold,
                eager_slot_bytes=max(threshold + 64, 16448),
            )
            row.append(_mpi_stream_bandwidth(nbytes, params))
        rows.append(row)
    return ExperimentResult(
        experiment="ablation-threshold",
        title="Ablation: eager/RMA switch point (MPI stream MB/s)",
        columns=["bytes"] + [f"thr={t}" for t in thresholds],
        rows=rows,
        notes=["the Figure 4 bandwidth jump follows the threshold"],
    )


def interrupt_coalescing(quick: bool = False) -> ExperimentResult:
    """Interrupt-delay tuning: latency vs bandwidth."""
    delays = [0.5, 6.9] if quick else [0.5, 2.0, 6.9, 15.0, 30.0]
    rows = []
    for delay in delays:
        gige = GigEParams(coalesce_delay=delay)
        rows.append([
            delay,
            mb.via_latency(4, gige_params=gige),
            mb.via_simultaneous_bandwidth(2_000_000, gige_params=gige),
        ])
    return ExperimentResult(
        experiment="ablation-coalescing",
        title="Ablation: interrupt coalescing delay",
        columns=["delay us", "RTT/2 us", "simul MB/s"],
        rows=rows,
        notes=[
            "section 3: the driver was tuned 'to utilize interrupt "
            "coalescing ... by selecting appropriate values'",
        ],
    )


def token_count(quick: bool = False) -> ExperimentResult:
    """Flow-control token pool size vs small-message stream rate."""
    token_counts = [2, 32] if quick else [1, 2, 4, 8, 32]
    rows = []
    for tokens in token_counts:
        params = CoreParams(data_tokens=tokens,
                            token_return_threshold=max(1, tokens // 4))
        rows.append([
            tokens,
            _mpi_stream_bandwidth(8192, params, repeats=16),
        ])
    return ExperimentResult(
        experiment="ablation-tokens",
        title="Ablation: flow-control tokens (8KB stream MB/s)",
        columns=["tokens", "stream MB/s"],
        rows=rows,
        notes=["few tokens stall the eager pipeline on credit returns"],
    )


def host_overhead(quick: bool = False) -> ExperimentResult:
    """Remove the receive copy (paper section 7 future work).

    On a single link the copy hides behind the wire; its real cost is
    the CPU/memory pressure under 6-link aggregation, so that is the
    metric that moves.
    """
    total = 1_000_000 if quick else 3_000_000
    variants = [
        ("baseline", ViaParams()),
        ("no recv copy", replace(ViaParams(), recv_copy=False)),
    ]
    rows = []
    for label, via in variants:
        rows.append([
            label,
            mb.via_latency(4, via_params=via),
            mb.via_simultaneous_bandwidth(2_000_000, via_params=via),
            mb.via_aggregate_bandwidth((3, 3, 3), 524288,
                                       total_bytes=total,
                                       via_params=via),
        ])
    return ExperimentResult(
        experiment="ablation-overhead",
        title="Ablation: M-VIA receive copy removal",
        columns=["variant", "RTT/2 us", "simul MB/s", "3-D agg MB/s"],
        rows=rows,
        notes=[
            "section 7: interrupt-level collectives / zero-copy receive "
            "were the planned follow-up to cut this copy; the win is in "
            "multi-link aggregation, not single-link numbers",
        ],
    )


def napi(quick: bool = False) -> ExperimentResult:
    """NAPI-style interrupt mitigation (paper section 7 second item)."""
    from repro.hw.params import HostParams

    windows = [0.0, 6.0] if quick else [0.0, 3.0, 6.0, 12.0]
    total = 1_000_000 if quick else 3_000_000
    rows = []
    for window in windows:
        host = HostParams(napi_poll_window=window)
        rows.append([
            window,
            mb.via_latency(4, host_params=host),
            mb.via_simultaneous_bandwidth(2_000_000, host_params=host),
            mb.via_aggregate_bandwidth((3, 3, 3), 524288,
                                       total_bytes=total,
                                       host_params=host),
        ])
    return ExperimentResult(
        experiment="ablation-napi",
        title="Ablation: NAPI-style polling window",
        columns=["poll window us", "RTT/2 us", "simul MB/s",
                 "3-D agg MB/s"],
        rows=rows,
        notes=[
            "section 7: 'a possible new M-VIA feature, similar to the "
            "NAPI ... to reduce the cost of OS-interrupts'",
        ],
    )


def cluster_b(quick: bool = False) -> ExperimentResult:
    """Collectives on the second production machine (6x8x8, 384
    nodes) vs the first (4x8x8): section 3's cluster B."""
    import numpy as np

    from repro.cluster.process_api import build_world

    configs = [(2, 4, 4), (3, 4, 4)] if quick else [(4, 8, 8), (6, 8, 8)]
    rows = []
    for dims in configs:
        cluster = build_mesh(dims, wrap=True)
        comms = build_world(cluster)
        times: Dict[str, float] = {}

        def program(comm, times=times):
            sim = comm.engine.sim
            yield from comm.barrier()
            start = sim.now
            yield from comm.bcast(root=0, nbytes=4)
            times.setdefault("b0", start)
            times["b1"] = max(times.get("b1", 0.0), sim.now)
            yield from comm.barrier()
            start = sim.now
            yield from comm.allreduce(nbytes=8, data=np.float64(1.0))
            times.setdefault("s0", start)
            times["s1"] = max(times.get("s1", 0.0), sim.now)
            return None

        run_mpi(cluster, program, comms=comms)
        steps = sum(-(-d // 2) for d in dims)
        rows.append([
            "x".join(map(str, dims)), cluster.size, steps,
            times["b1"] - times["b0"], times["s1"] - times["s0"],
        ])
    return ExperimentResult(
        experiment="cluster-b",
        title="Cluster A vs cluster B: small-message collectives",
        columns=["mesh", "nodes", "tree steps", "broadcast us",
                 "global sum us"],
        rows=rows,
        notes=[
            "section 3: the 384-node 6x8x8 torus deployed alongside "
            "the measured 256-node 4x8x8; collective times scale with "
            "the dimension-order step count",
        ],
    )


def kernel_collectives(quick: bool = False) -> ExperimentResult:
    """Interrupt-level global reduction (paper section 7 future work)."""
    import numpy as np

    from repro.cluster.process_api import build_world
    from repro.mpi.op import SUM

    dims = (2, 4, 4) if quick else (4, 8, 8)
    cluster = build_mesh(dims, wrap=True)
    comms = build_world(cluster)
    for node in cluster.nodes:
        node.via.enable_kernel_collectives(root=0)
    times: Dict[str, float] = {}

    def program(comm):
        sim = comm.engine.sim
        yield from comm.barrier()
        start = sim.now
        user = yield from comm.allreduce(nbytes=8, data=np.float64(1.0))
        times.setdefault("u0", start)
        times["u1"] = max(times.get("u1", 0.0), sim.now)
        yield from comm.barrier()
        start = sim.now
        kernel = yield from comm.engine.device.kernel_collective.global_sum(
            np.float64(1.0), SUM, nbytes=8
        )
        times.setdefault("k0", start)
        times["k1"] = max(times.get("k1", 0.0), sim.now)
        assert float(user) == float(kernel) == cluster.size
        return None

    run_mpi(cluster, program, comms=comms)
    user_us = times["u1"] - times["u0"]
    kernel_us = times["k1"] - times["k0"]
    return ExperimentResult(
        experiment="ablation-kernel-reduce",
        title=f"Ablation: interrupt-level global sum on {dims}",
        columns=["variant", "global sum us"],
        rows=[["user-level (reduce+bcast)", user_us],
              ["interrupt-level (section 7)", kernel_us]],
        notes=[
            "section 7: kernel-space intermediate combining 'eliminates "
            "the overhead of copying data to user space for the "
            "intermediate steps, therefore reduces the overall latency'",
        ],
    )


def checksum_offload(quick: bool = False) -> ExperimentResult:
    """Hardware vs software per-packet checksum (the Jlab change)."""
    variants = [
        ("hardware", GigEParams(hw_checksum=True)),
        ("software", GigEParams(hw_checksum=False)),
    ]
    rows = []
    for label, gige in variants:
        rows.append([
            label,
            mb.via_latency(4, gige_params=gige),
            mb.via_simultaneous_bandwidth(2_000_000, gige_params=gige),
        ])
    return ExperimentResult(
        experiment="ablation-checksum",
        title="Ablation: per-packet checksum offload",
        columns=["checksum", "RTT/2 us", "simul MB/s"],
        rows=rows,
        notes=[
            "section 4: the Jlab driver change checksums each packet in "
            "hardware 'without degrading performance'",
        ],
    )
