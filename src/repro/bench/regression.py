"""Perf-regression sentinel over ``BENCH_PERF.json``.

Compares a freshly generated profile against a baseline (typically
the committed ``BENCH_PERF.json``), section by section: every numeric
leaf present in *both* files contributes the ratio ``fresh / base``,
and a section regresses when the **geometric mean** of its ratios
exceeds ``1 + tolerance``.  The geomean is the right aggregate here —
per-leaf wall-clock numbers are noisy (CI machines vary run to run),
but a systematic slowdown moves every leaf in the same direction and
survives the averaging, while one noisy outlier is damped by the
rest of its section.

Only *time-like* leaves participate by default: keys containing
``wall``, ``seconds``, ``_s`` or ``overhead`` (event counts and table
digests are determinism facts, not perf facts — they have their own
harnesses).  Exit status: 0 when no section regresses, 1 otherwise —
the CI wiring that finally makes the perf trajectory a gate instead
of an artifact.

CLI::

    python -m repro.bench.regression BASELINE.json [FRESH.json]
        [--tolerance 0.2] [--all-leaves]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, Iterator, List, Tuple

#: Substrings that mark a leaf as wall-clock-like (perf-relevant).
_TIME_MARKERS = ("wall", "seconds", "overhead", "latency")


def _is_time_key(key: str) -> bool:
    lowered = key.lower()
    return (any(marker in lowered for marker in _TIME_MARKERS)
            or lowered.endswith("_s") or lowered.endswith("_us")
            or lowered.endswith("_ms"))


def _numeric_leaves(node, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Flatten nested dicts/lists to ``(dotted.path, value)`` leaves."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield prefix, float(node)
        return
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(node[key], path)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            yield from _numeric_leaves(item, f"{prefix}[{index}]")


def section_ratios(baseline: dict, fresh: dict,
                   time_only: bool = True) -> Dict[str, List[Tuple[str, float]]]:
    """Per-section ``(leaf, fresh/base)`` ratios over shared leaves.

    Leaves missing from either side, non-positive on either side, or
    (with ``time_only``) not wall-clock-like are skipped — a ratio is
    only meaningful for a strictly positive quantity both runs
    measured.
    """
    sections: Dict[str, List[Tuple[str, float]]] = {}
    shared = set(baseline) & set(fresh)
    for section in sorted(shared):
        base_leaves = dict(_numeric_leaves(baseline[section]))
        fresh_leaves = dict(_numeric_leaves(fresh[section]))
        ratios: List[Tuple[str, float]] = []
        for path in sorted(set(base_leaves) & set(fresh_leaves)):
            leaf_key = path.rsplit(".", 1)[-1]
            if time_only and not _is_time_key(leaf_key):
                continue
            base_value = base_leaves[path]
            fresh_value = fresh_leaves[path]
            if base_value <= 0 or fresh_value <= 0:
                continue
            ratios.append((path, fresh_value / base_value))
        if ratios:
            sections[section] = ratios
    return sections


def geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(baseline: dict, fresh: dict, tolerance: float = 0.2,
            time_only: bool = True) -> Tuple[List[str], bool]:
    """Render the comparison; ``(report_lines, regressed)``."""
    lines: List[str] = []
    regressed = False
    sections = section_ratios(baseline, fresh, time_only=time_only)
    if not sections:
        return (["no comparable sections (nothing shared between "
                 "baseline and fresh profiles)"], False)
    bound = 1.0 + tolerance
    for section, ratios in sections.items():
        section_geomean = geomean([ratio for _path, ratio in ratios])
        verdict = "ok"
        if section_geomean > bound:
            verdict = "REGRESSED"
            regressed = True
        elif section_geomean < 1.0 / bound:
            verdict = "improved"
        lines.append(
            f"{section:<18} geomean x{section_geomean:.3f} over "
            f"{len(ratios)} leaves (tolerance x{bound:.2f}) {verdict}")
        if verdict == "REGRESSED":
            worst = sorted(ratios, key=lambda pair: -pair[1])[:5]
            for path, ratio in worst:
                lines.append(f"    {path}: x{ratio:.3f}")
    return lines, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-regression",
        description="Compare a fresh BENCH_PERF.json against a "
                    "baseline; exit 1 on a perf regression.",
    )
    parser.add_argument("baseline", help="baseline BENCH_PERF.json "
                                         "(e.g. the committed one)")
    parser.add_argument("fresh", nargs="?", default="BENCH_PERF.json",
                        help="fresh profile (default BENCH_PERF.json)")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed geomean slowdown per section "
                             "(0.2 = +20%%)")
    parser.add_argument("--all-leaves", action="store_true",
                        help="compare every shared numeric leaf, not "
                             "just wall-clock-like ones")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be >= 0")
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    lines, regressed = compare(baseline, fresh,
                               tolerance=args.tolerance,
                               time_only=not args.all_leaves)
    for line in lines:
        sys.stdout.write(line + "\n")
    sys.stdout.write(
        "perf regression detected\n" if regressed
        else "no perf regression\n")
    return 1 if regressed else 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["compare", "geomean", "main", "section_ratios"]
