"""Figure experiments: one function per figure in the paper."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.bench import microbench as mb
from repro.bench.harness import ExperimentResult
from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_world, run_mpi
from repro.collectives.schedule import opt_bound, opt_schedule, sdf_schedule
from repro.topology.torus import Torus

#: Message-size axes (bytes).
FULL_SIZES = [4, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576]
QUICK_SIZES = [4, 1024, 16384, 262144]
FULL_AGG_SIZES = [2048, 8192, 32768, 131072, 524288, 2097152]
QUICK_AGG_SIZES = [4096, 65536, 524288]


def fig2(quick: bool = False) -> ExperimentResult:
    """M-VIA vs TCP point-to-point latency and bandwidth."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rows = []
    for nbytes in sizes:
        via_lat = mb.via_latency(nbytes) if nbytes <= 16384 else float("nan")
        tcp_lat = mb.tcp_latency(nbytes) if nbytes <= 16384 else float("nan")
        rows.append([
            nbytes,
            via_lat,
            tcp_lat,
            mb.via_pingpong_bandwidth(nbytes) if nbytes >= 1024 else 0.0,
            mb.tcp_pingpong_bandwidth(nbytes) if nbytes >= 1024 else 0.0,
            mb.via_simultaneous_bandwidth(max(nbytes, 4096)),
            mb.tcp_simultaneous_bandwidth(max(nbytes, 4096)),
        ])
    return ExperimentResult(
        experiment="fig2",
        title="Figure 2: M-VIA vs TCP point-to-point latency/bandwidth",
        columns=["bytes", "via RTT/2 us", "tcp RTT/2 us",
                 "via pp MB/s", "tcp pp MB/s",
                 "via simul MB/s", "tcp simul MB/s"],
        rows=rows,
        notes=[
            "paper: M-VIA ~18.5us small-message RTT/2; TCP at least 30% higher",
            "paper: M-VIA simultaneous ~110 MB/s, 37% over TCP; pingpong "
            "only marginally better",
        ],
    )


def fig3(quick: bool = False) -> ExperimentResult:
    """Aggregated multi-link bandwidth: M-VIA and TCP, 2-D and 3-D."""
    sizes = QUICK_AGG_SIZES if quick else FULL_AGG_SIZES
    via_total = 2_000_000 if quick else 6_000_000
    tcp_total = 1_000_000 if quick else 4_000_000
    dims2, dims3 = (3, 3), (3, 3, 3)
    rows = []
    for nbytes in sizes:
        rows.append([
            nbytes,
            mb.via_aggregate_bandwidth(dims2, nbytes,
                                       total_bytes=via_total),
            mb.via_aggregate_bandwidth(dims3, nbytes,
                                       total_bytes=via_total),
            mb.tcp_aggregate_bandwidth(dims2, nbytes,
                                       total_bytes=tcp_total),
            mb.tcp_aggregate_bandwidth(dims3, nbytes,
                                       total_bytes=tcp_total),
        ])
    return ExperimentResult(
        experiment="fig3",
        title="Figure 3: aggregated send bandwidth per node (MB/s)",
        columns=["bytes", "via 2-D", "via 3-D", "tcp 2-D", "tcp 3-D"],
        rows=rows,
        notes=[
            "paper: M-VIA 2-D flattens ~400 MB/s; 3-D peaks ~550 then "
            "falls toward ~400; TCP well below both",
        ],
    )


def fig4(quick: bool = False) -> ExperimentResult:
    """MPI/QMP point-to-point latency and aggregated bandwidth."""
    lat_sizes = [4, 64, 1024] if quick else [4, 16, 64, 256, 1024,
                                             4096, 8192]
    agg_sizes = [4096, 16384, 524288] if quick else [
        2048, 8192, 15000, 16384, 32768, 131072, 524288, 1048576,
    ]
    total = 2_000_000 if quick else 6_000_000
    lat_rows = [[n, mb.mpi_latency(n)] for n in lat_sizes]
    agg_rows = [
        [n,
         mb.mpi_aggregate_bandwidth((3, 3), n, total_bytes=total),
         mb.mpi_aggregate_bandwidth((3, 3, 3), n, total_bytes=total)]
        for n in agg_sizes
    ]
    rows = [
        [n, lat, float("nan"), float("nan")] for n, lat in lat_rows
    ] + [
        [n, float("nan"), b2, b3] for n, b2, b3 in agg_rows
    ]
    return ExperimentResult(
        experiment="fig4",
        title="Figure 4: MPI/QMP point-to-point performance",
        columns=["bytes", "RTT/2 us", "2-D agg MB/s", "3-D agg MB/s"],
        rows=rows,
        notes=[
            "paper: ~18.5us RTT/2 (small implementation overhead); ~400 "
            "MB/s 3-D total; bandwidth jump at 16K (eager -> RMA switch)",
        ],
    )


def fig5(quick: bool = False) -> ExperimentResult:
    """Broadcast and global sum on the (4,8,8) torus."""
    dims = (2, 4, 4) if quick else (4, 8, 8)
    sizes = [4, 4096] if quick else [4, 256, 1024, 4096, 16384, 65536]
    cluster = build_mesh(dims, wrap=True)
    comms = build_world(cluster)
    rows = []
    for nbytes in sizes:
        times: Dict[str, float] = {}

        def program(comm, nbytes=nbytes, times=times):
            sim = comm.engine.sim
            yield from comm.barrier()
            start = sim.now
            yield from comm.bcast(root=0, nbytes=nbytes)
            times.setdefault("bcast_start", start)
            times["bcast_end"] = max(times.get("bcast_end", 0.0), sim.now)
            yield from comm.barrier()
            start = sim.now
            yield from comm.allreduce(nbytes=max(nbytes, 8),
                                      data=np.float64(1.0))
            times.setdefault("sum_start", start)
            times["sum_end"] = max(times.get("sum_end", 0.0), sim.now)

        run_mpi(cluster, program, comms=comms)
        rows.append([
            nbytes,
            times["bcast_end"] - times["bcast_start"],
            times["sum_end"] - times["sum_start"],
        ])
    return ExperimentResult(
        experiment="fig5",
        title=f"Figure 5: broadcast and global sum on {dims} (us)",
        columns=["bytes", "broadcast us", "global sum us"],
        rows=rows,
        notes=[
            "paper (4x8x8): ~200us small-message broadcast (10 steps x "
            "~20us); global sum ~2x broadcast; linear growth with size",
        ],
    )


def fig6(quick: bool = False) -> ExperimentResult:
    """Scatter: SDF vs OPT on the 8x8 and 4x8x8 tori."""
    configs: Sequence = [(8, 8)] if quick else [(8, 8), (4, 8, 8)]
    sizes = [64, 4096] if quick else [64, 256, 1024, 4096, 16384]
    rows = []
    for dims in configs:
        torus = Torus(dims)
        sdf_steps = sdf_schedule(torus, 0).steps
        opt_steps = opt_schedule(torus, 0).steps
        cluster = build_mesh(dims, wrap=True)
        comms = build_world(cluster)
        for nbytes in sizes:
            measured = {}
            for algorithm in ("sdf", "opt"):
                times: Dict[str, float] = {}

                def program(comm, nbytes=nbytes, algorithm=algorithm,
                            times=times):
                    sim = comm.engine.sim
                    yield from comm.barrier()
                    start = sim.now
                    data = None
                    if comm.rank == 0:
                        data = [b"x"] * comm.size
                    yield from comm.scatter(root=0, nbytes=nbytes,
                                            data=data,
                                            algorithm=algorithm)
                    times.setdefault("start", start)
                    times["end"] = max(times.get("end", 0.0), sim.now)

                run_mpi(cluster, program, comms=comms)
                measured[algorithm] = times["end"] - times["start"]
            rows.append([
                "x".join(map(str, dims)), nbytes,
                measured["sdf"], measured["opt"],
                measured["sdf"] / measured["opt"],
                sdf_steps, opt_steps, opt_bound(torus, 0),
            ])
    return ExperimentResult(
        experiment="fig6",
        title="Figure 6: one-to-all personalized communication (scatter)",
        columns=["mesh", "bytes", "SDF us", "OPT us", "SDF/OPT",
                 "SDF steps", "OPT steps", "OPT bound"],
        rows=rows,
        notes=[
            "paper: OPT ~4x faster than SDF on average for both meshes; "
            "OPT steps == max(T1, T2) (verified exactly by the step model)",
        ],
    )


def routing(quick: bool = False) -> ExperimentResult:
    """Non-nearest-neighbor latency: 18.5 + 12.5 (n-1) us (section 5.1)."""
    hop_counts = [1, 2, 3] if quick else [1, 2, 3, 4, 5, 6]
    rows = []
    for hops in hop_counts:
        measured = mb.via_latency(4, hops=hops)
        predicted = 18.5 + 12.5 * (hops - 1)
        rows.append([hops, measured, predicted])
    return ExperimentResult(
        experiment="routing",
        title="Routing latency vs hop count (us)",
        columns=["hops", "measured RTT/2", "paper model"],
        rows=rows,
        notes=["paper: 12.5us node-to-node routing latency per extra hop"],
    )
