"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import io
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 notes: Sequence[str] = ()) -> str:
    """Fixed-width table with a title rule and optional footnotes."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    out = io.StringIO()
    out.write(title + "\n")
    out.write("=" * max(len(title), sum(widths) + 2 * len(widths)) + "\n")
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    for note in notes:
        out.write(f"note: {note}\n")
    return out.getvalue()


def to_csv(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Comma-separated rendering (no quoting needed for our data)."""
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_format_cell(v) for v in row))
    return "\n".join(lines) + "\n"


def to_markdown(columns: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavored markdown table (used to build EXPERIMENTS.md)."""
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    return "\n".join(out) + "\n"
