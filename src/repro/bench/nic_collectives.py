"""Crossover study: host vs kernel vs NIC-resident collectives.

``python -m repro.bench --nic-collectives`` measures barrier,
broadcast and global-combine latency on every tier across a sweep of
mesh sizes, prints the comparison table, and records a
``nic_collectives`` section into ``BENCH_PERF.json``:

* per-mesh/per-tier latencies (us per operation),
* the **crossover verdict** — at every mesh of 8+ nodes the NIC tier
  must beat the kernel tier on barrier and broadcast strictly (the
  firmware state machine pays no per-hop interrupt or coalescing
  delay, so its advantage *grows* with node count),
* the **host-overhead comparison** — total and per-operation time the
  host CPU spends in ``api-call``/``irq-wait`` spans for the kernel vs
  NIC tiers on the paper's 2x2x2 mesh.  The NIC tier must cut the
  per-operation mean by at least half: a doorbell write replaces the
  deposit syscall and the completion IRQ replaces one interrupt *per
  collective* instead of one per tree hop.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.harness import ExperimentResult
from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_world, run_mpi
from repro.obs.recorder import API_CALL, IRQ_WAIT

TIERS = ("host", "kernel", "nic")
COLLECTIVES = ("barrier", "bcast", "combine")
MESHES_FULL = ((2, 2), (2, 2, 2), (3, 3), (2, 2, 4))
MESHES_QUICK = ((2, 2), (2, 2, 2), (3, 3))
REPEATS = 4
NBYTES = 256
#: Meshes with at least this many nodes must show the NIC tier
#: strictly beating the kernel tier on barrier and broadcast.
CROSSOVER_SIZE = 8


def _enable_tier(cluster, comms, tier: str) -> None:
    if tier == "kernel":
        for node in cluster.nodes:
            node.via.enable_kernel_collectives()
    elif tier == "nic":
        for node in cluster.nodes:
            node.via.enable_nic_collectives()
    for comm in comms:
        comm.set_collective_tier(tier)


def _program(comm, times, repeats, nbytes):
    """Per-rank measurement shell: sync, then time each collective."""
    sim = comm.engine.sim
    for kind in COLLECTIVES:
        yield from comm.barrier()
        start = sim.now
        for _ in range(repeats):
            if kind == "barrier":
                yield from comm.barrier()
            elif kind == "bcast":
                yield from comm.bcast(
                    root=0, nbytes=nbytes,
                    data=1.0 if comm.rank == 0 else None)
            else:
                yield from comm.allreduce(
                    nbytes=nbytes, data=float(comm.rank + 1))
        times.setdefault(kind, {})[comm.rank] = (start, sim.now)
    return None


def _measure(dims: Tuple[int, ...], tier: str, observe: bool = False):
    """One world, one tier; returns ({collective: us/op}, cluster)."""
    cluster = build_mesh(dims, stack="via")
    if observe:
        cluster.observability()
    comms = build_world(cluster)
    _enable_tier(cluster, comms, tier)
    times: Dict[str, Dict[int, Tuple[float, float]]] = {}
    run_mpi(cluster, _program, args=(times, REPEATS, NBYTES),
            comms=comms)
    latency = {}
    for kind, per_rank in times.items():
        start = min(t0 for t0, _t1 in per_rank.values())
        end = max(t1 for _t0, t1 in per_rank.values())
        latency[kind] = round((end - start) / REPEATS, 4)
    return latency, cluster


def _host_overhead(recorder, prefix: str) -> dict:
    """api-call + irq-wait time charged to collective traces."""
    ids = {trace for trace, info in recorder.traces.items()
           if info.name.startswith(prefix)}
    spans = [span for span in recorder.spans
             if span.trace in ids and span.kind in (API_CALL, IRQ_WAIT)]
    total = sum(span.duration for span in spans)
    return {
        "spans": len(spans),
        "total_us": round(total, 4),
        "mean_us_per_op": round(total / max(len(ids), 1), 4),
    }


def run_study(quick: bool = False):
    """The ``--nic-collectives`` entry point.

    Returns ``(ExperimentResult, section)`` where ``section`` is the
    dict merged into BENCH_PERF.json as ``nic_collectives``.
    """
    meshes = MESHES_QUICK if quick else MESHES_FULL
    rows = []
    latencies: Dict[Tuple[Tuple[int, ...], str], Dict[str, float]] = {}
    mesh_section: Dict[str, dict] = {}
    for dims in meshes:
        size = 1
        for d in dims:
            size *= d
        label = "x".join(str(d) for d in dims)
        mesh_section[label] = {"nodes": size, "tiers": {}}
        for tier in TIERS:
            latency, _cluster = _measure(dims, tier)
            latencies[(dims, tier)] = latency
            mesh_section[label]["tiers"][tier] = latency
            rows.append([label, size, tier, latency["barrier"],
                         latency["bcast"], latency["combine"]])

    crossover_ok = True
    crossover_failures = []
    for dims in meshes:
        size = 1
        for d in dims:
            size *= d
        if size < CROSSOVER_SIZE:
            continue
        for kind in ("barrier", "bcast"):
            nic = latencies[(dims, "nic")][kind]
            kernel = latencies[(dims, "kernel")][kind]
            if not nic < kernel:
                crossover_ok = False
                crossover_failures.append(
                    f"{kind}@{'x'.join(map(str, dims))}: "
                    f"nic {nic} !< kernel {kernel}")

    # Host-overhead comparison on the paper's 2x2x2 mesh, recorder on.
    _lat_k, cluster_k = _measure((2, 2, 2), "kernel", observe=True)
    _lat_n, cluster_n = _measure((2, 2, 2), "nic", observe=True)
    kernel_oh = _host_overhead(cluster_k.sim.recorder, "kcoll-")
    nic_oh = _host_overhead(cluster_n.sim.recorder, "nicoll-")
    if kernel_oh["mean_us_per_op"] > 0:
        reduction_pct = round(
            (1.0 - nic_oh["mean_us_per_op"]
             / kernel_oh["mean_us_per_op"]) * 100.0, 1)
    else:
        reduction_pct = 0.0

    section = {
        "repeats": REPEATS,
        "nbytes": NBYTES,
        "meshes": mesh_section,
        "crossover_ok": crossover_ok,
        "crossover_failures": crossover_failures,
        "host_overhead": {
            "mesh": "2x2x2",
            "kernel": kernel_oh,
            "nic": nic_oh,
            "reduction_pct": reduction_pct,
        },
    }
    result = ExperimentResult(
        experiment="nic-collectives",
        title="Collective tier crossover: host vs kernel vs "
              "NIC-resident",
        columns=["mesh", "nodes", "tier", "barrier_us", "bcast_us",
                 "combine_us"],
        rows=rows,
        notes=[
            f"{REPEATS} repeats per point, {NBYTES}B payloads; "
            f"latency = span of the slowest rank / repeats.",
            f"crossover (nic < kernel on barrier+bcast at >= "
            f"{CROSSOVER_SIZE} nodes): "
            + ("holds everywhere" if crossover_ok
               else "; ".join(crossover_failures)),
            f"host overhead per op on 2x2x2 (api-call + irq-wait): "
            f"kernel {kernel_oh['mean_us_per_op']}us -> nic "
            f"{nic_oh['mean_us_per_op']}us ({reduction_pct}% lower)",
        ],
    )
    return result, section
