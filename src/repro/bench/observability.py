"""Observability workloads behind ``python -m repro.bench``.

``--trace OUT.json`` runs an 8-node fig5-style collective (broadcast +
global sum on a (2,2,2) wrap torus) with the flight recorder attached
and writes a Chrome trace-event / Perfetto JSON file.

``--breakdown`` runs the fig2 point workload (4-byte VIA ping-pong)
and prints the per-span-kind latency table; its api-call component is
the paper's ~6 us host overhead (send 2.68 + receive 3.68).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs import FlightRecorder
from repro.obs.export import (
    api_overhead_per_message,
    breakdown_table,
    validate_chrome_trace,
    write_chrome_trace,
)


def traced_collective(dims: Tuple[int, ...] = (2, 2, 2),
                      nbytes: int = 4096,
                      recorder: Optional[FlightRecorder] = None):
    """Run the fig5-style collective with the recorder on; returns it."""
    from repro.cluster.builder import build_mesh
    from repro.cluster.process_api import build_world, run_mpi

    cluster = build_mesh(dims, wrap=True)
    if recorder is not None:
        cluster.sim.recorder = recorder
    recorder = cluster.observability()
    comms = build_world(cluster)

    def program(comm, nbytes=nbytes):
        yield from comm.barrier()
        yield from comm.bcast(root=0, nbytes=nbytes)
        yield from comm.allreduce(nbytes=max(nbytes, 8))

    run_mpi(cluster, program, comms=comms)
    return recorder


def trace_stats(quick: bool = False) -> dict:
    """Pure form of the ``--trace`` workload: run the traced collective
    and return its summary as a plain result object (no file, no
    stdout) — the code path service workers share with the CLI.

    ``span_key_hash`` is the content hash of the recorder's sorted
    span identities, so two runs of the same configuration can be
    compared for bit-identical observability output by string
    equality alone.
    """
    from repro.canonical import content_hash

    recorder = traced_collective(nbytes=1024 if quick else 4096)
    span_keys = [list(key) for key in recorder.span_keys()]
    return {
        "messages": len(recorder.traces),
        "spans": len(recorder.spans),
        "events": len(recorder.events),
        "kinds": sorted(recorder.kinds()),
        "span_key_hash": content_hash(span_keys),
    }


def export_trace(path: str, quick: bool = False) -> str:
    """Run the traced collective and write ``path``; returns a one-line
    summary (raises ``RuntimeError`` if the JSON fails validation)."""
    recorder = traced_collective(nbytes=1024 if quick else 4096)
    trace = write_chrome_trace(recorder, path)
    problems = validate_chrome_trace(trace)
    if problems:
        raise RuntimeError(
            "trace failed schema validation: " + "; ".join(problems[:5])
        )
    kinds = sorted(recorder.kinds())
    return (
        f"[trace: {path} — {len(recorder.traces)} messages, "
        f"{len(recorder.spans)} spans, {len(recorder.events)} events, "
        f"{len(kinds)} kinds ({', '.join(kinds)}); "
        f"open at https://ui.perfetto.dev]\n"
    )


def tier_breakdown(quick: bool = False) -> str:
    """Host-CPU overhead per collective, tier by tier.

    Runs the collective suite (barrier + bcast + combine) on the
    paper's 2x2x2 mesh once per tier with the recorder on, and totals
    the ``api-call`` / ``irq-wait`` spans — the host-side cost the
    NIC-resident tier exists to remove.  Rendered next to the fig2
    breakdown so the ~6 us host-API-overhead table and the PR 8
    crossover claim read from one output.
    """
    from repro.bench.nic_collectives import (
        COLLECTIVES,
        REPEATS,
        TIERS,
        _measure,
    )
    from repro.obs.recorder import API_CALL, IRQ_WAIT

    ops = REPEATS * len(COLLECTIVES)
    lines = [
        f"per-collective-tier host overhead (2x2x2 mesh, "
        f"{'+'.join(COLLECTIVES)} x{REPEATS}):",
        f"{'tier':<8} {'api-call n':>10} {'api us':>10} "
        f"{'irq-wait n':>10} {'irq us':>10} {'host us/op':>11}",
    ]
    per_tier = {}
    for tier in TIERS:
        _latency, cluster = _measure((2, 2, 2), tier, observe=True)
        recorder = cluster.sim.recorder
        api = [s for s in recorder.spans if s.kind == API_CALL]
        irq = [s for s in recorder.spans if s.kind == IRQ_WAIT]
        api_us = sum(s.duration for s in api)
        irq_us = sum(s.duration for s in irq)
        per_op = (api_us + irq_us) / ops
        per_tier[tier] = per_op
        lines.append(
            f"{tier:<8} {len(api):>10} {api_us:>10.3f} "
            f"{len(irq):>10} {irq_us:>10.3f} {per_op:>11.3f}"
        )
    if per_tier.get("host"):
        reduction = (1.0 - per_tier["nic"] / per_tier["host"]) * 100.0
        lines.append(
            f"nic tier cuts host time per op by {reduction:.1f}% vs "
            f"the host tier (PR 8 crossover claim: >90%)"
        )
    return "\n".join(lines) + "\n"


def breakdown_report(quick: bool = False) -> str:
    """Run the fig2 point workload and render the breakdown table,
    then the per-collective-tier host-overhead rows."""
    from repro.bench.microbench import via_latency
    from repro.sim import Simulator

    sim = Simulator()
    recorder = FlightRecorder()
    sim.recorder = recorder
    latency = via_latency(nbytes=4, repeats=10 if quick else 20, sim=sim)
    return (
        "per-message latency breakdown "
        f"(fig2 point: 4-byte VIA ping-pong, one-way {latency:.2f} us)\n"
        + breakdown_table(recorder)
        + "\n" + tier_breakdown(quick=quick)
    )


__all__ = [
    "api_overhead_per_message",
    "breakdown_report",
    "export_trace",
    "trace_stats",
    "traced_collective",
]
