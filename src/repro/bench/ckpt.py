"""Checkpoint overhead profile: what do window snapshots cost?

``python -m repro.bench --ckpt-profile`` runs the quick sharded suite
twice — once bare, once capturing a durable checkpoint every N
conservative windows into a throwaway store — and merges a
``checkpoint`` section into ``BENCH_PERF.json``:

* per-config wall seconds for both modes and the derived overhead
  percentage (the docs/CHECKPOINT.md budget is <5% on the quick
  suite);
* capture counts, so a regression that silently stops checkpointing
  is visible in the published numbers;
* ``tables_identical`` — the checkpointed run must be bit-identical
  to the bare run (the same invariant ``tests/test_ckpt_identity.py``
  pins, asserted here on the profiling configs too).

Overhead is estimated from *paired* runs: each repeat times bare and
checkpointed back to back and takes their ratio, and the reported
overhead is the median ratio.  Background load on a shared CI box
drifts on a timescale longer than one pair, so it inflates (or
deflates) both halves of a pair together and cancels in the ratio —
unpaired best-of minima routinely produced ±15% phantom overheads on
these sub-second runs.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

#: (dims, nshards) configs for the quick suite: the 1/2/4-shard ladder
#: the identity tests pin, small enough for CI but sharded enough that
#: checkpoints cover cross-shard reliability state.
QUICK_CONFIGS: Tuple[Tuple[Tuple[int, ...], int], ...] = (
    ((2, 2, 2), 1),
    ((4, 2, 2), 2),
    ((4, 4, 2), 4),
)


def _one_run(dims: Tuple[int, ...], nshards: int, workload: str,
             every: int, store_root: Optional[str]) -> Tuple[float, Any]:
    from repro.ckpt import CheckpointStore
    from repro.pdes import CheckpointPolicy, run_sharded

    policy = None
    if store_root is not None:
        policy = CheckpointPolicy(every=every,
                                  store=CheckpointStore(store_root))
    started = time.perf_counter()
    result = run_sharded(dims, workload=workload, nshards=nshards,
                         checkpoint=policy)
    return time.perf_counter() - started, result


def overhead_profile(workload: str = "aggregate", every: int = 256,
                     repeats: int = 6,
                     configs: Optional[Tuple] = None) -> Dict[str, Any]:
    """Measure checkpointing overhead; returns the ``checkpoint``
    section for ``BENCH_PERF.json``."""
    from repro.canonical import stable_json

    rows: List[Dict[str, Any]] = []
    for dims, nshards in (configs or QUICK_CONFIGS):
        ratios: List[float] = []
        bare_wall = ckpt_wall = float("inf")
        bare_result = ckpt_result = None
        for repeat in range(repeats):
            # Alternate which mode runs first: the second run of a
            # back-to-back pair lands on a post-boost (thermally
            # throttled) core and reads a few percent slow, which
            # showed up as phantom overhead even on no-op configs.
            # Flipping the order flips that bias's sign, so the
            # median ratio centres on the real cost.
            def run_bare():
                nonlocal bare_wall, bare_result
                wall, result = _one_run(dims, nshards, workload, every,
                                        None)
                bare_wall = min(bare_wall, wall)
                bare_result = result
                return wall

            def run_ckpt():
                nonlocal ckpt_wall, ckpt_result
                root = tempfile.mkdtemp(prefix="repro-ckpt-bench-")
                try:
                    wall, result = _one_run(dims, nshards, workload,
                                            every, root)
                finally:
                    shutil.rmtree(root, ignore_errors=True)
                ckpt_wall = min(ckpt_wall, wall)
                ckpt_result = result
                return wall

            if repeat % 2 == 0:
                pair_bare, pair_ckpt = run_bare(), run_ckpt()
            else:
                pair_ckpt, pair_bare = run_ckpt(), run_bare()
            ratios.append((repeat % 2, pair_ckpt / pair_bare))
        # Median per order group, then the geometric mean of the two
        # group medians: the order bias inflates one group and
        # deflates the other symmetrically, so it cancels here.
        medians = []
        for order in (0, 1):
            group = sorted(r for o, r in ratios if o == order)
            if group:
                medians.append(group[len(group) // 2])
        median_ratio = 1.0
        for value in medians:
            median_ratio *= value
        median_ratio **= 1.0 / max(len(medians), 1)
        identical = (stable_json(bare_result.table)
                     == stable_json(ckpt_result.table))
        rows.append({
            "dims": list(dims),
            "nshards": nshards,
            "windows": ckpt_result.windows,
            "checkpoints_written": ckpt_result.checkpoints,
            "bare_wall_s": round(bare_wall, 4),
            "ckpt_wall_s": round(ckpt_wall, 4),
            "overhead_pct": round((median_ratio - 1.0) * 100.0, 2),
            "tables_identical": identical,
        })
    worst = max(row["overhead_pct"] for row in rows)
    return {
        "workload": workload,
        "every": every,
        "repeats": repeats,
        "configs": rows,
        "worst_overhead_pct": worst,
        "all_tables_identical": all(r["tables_identical"] for r in rows),
    }


def render_profile(section: Dict[str, Any]) -> str:
    """Human summary of an :func:`overhead_profile` section."""
    lines = [
        f"checkpoint overhead (workload={section['workload']} "
        f"every={section['every']} windows, best of "
        f"{section['repeats']}):"
    ]
    for row in section["configs"]:
        dims = "x".join(str(d) for d in row["dims"])
        lines.append(
            f"  {dims} n={row['nshards']}: "
            f"{row['bare_wall_s']:.2f}s bare -> "
            f"{row['ckpt_wall_s']:.2f}s ckpt "
            f"({row['overhead_pct']:+.1f}%, "
            f"{row['checkpoints_written']} captures over "
            f"{row['windows']} windows, identical="
            f"{row['tables_identical']})"
        )
    lines.append(
        f"  worst overhead: {section['worst_overhead_pct']:+.1f}% "
        f"(budget <5%), tables identical: "
        f"{section['all_tables_identical']}"
    )
    return "\n".join(lines) + "\n"


__all__ = ["QUICK_CONFIGS", "overhead_profile", "render_profile"]
