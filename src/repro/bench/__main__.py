"""CLI: ``python -m repro.bench <experiment ...> [--quick] [--csv]``.

``python -m repro.bench all`` runs everything (the full set takes a
while; add ``--quick`` for the reduced sweeps).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps (CI-sized)")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of tables")
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    for name in names:
        started = time.time()
        result = run_experiment(name, quick=args.quick)
        output = result.csv() if args.csv else result.render()
        sys.stdout.write(output)
        sys.stdout.write(
            f"[{name}: {time.time() - started:.1f}s wall]\n\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
