"""CLI: ``python -m repro.bench <experiment ...> [--quick] [--csv]``.

``python -m repro.bench all`` runs everything (the full set takes a
while; add ``--quick`` for the reduced sweeps).  ``--profile`` also
records per-experiment wall-clock seconds and simulator event counts
into ``BENCH_PERF.json``, keyed by whether the fast path was active —
the file CI publishes to track the fast-path speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench.harness import EXPERIMENTS, run_experiment


def _write_profile(path: str, mode: str, profile: dict) -> None:
    """Merge this run's numbers into ``path`` under ``mode``.

    The file keeps both modes side by side so one CI job per mode can
    fill it in; ``speedup`` is derived wherever both are present.
    """
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data.setdefault("fastpath_on", {})
    data.setdefault("fastpath_off", {})
    data[mode].update(profile)
    speedups = {}
    for name, on in data["fastpath_on"].items():
        off = data["fastpath_off"].get(name)
        if off and on["wall_s"] > 0:
            speedups[name] = round(off["wall_s"] / on["wall_s"], 2)
    data["speedup"] = speedups
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _merge_section(path: str, key: str, value: dict) -> None:
    """Write ``value`` as BENCH_PERF.json's ``key`` section, preserving
    whatever the other jobs recorded."""
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = value
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument("--chaos", type=int, default=0, metavar="N",
                        help="run N seeded chaos campaigns (node "
                             "crashes under live MPI traffic; seeded "
                             "by --fault-seed)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps (CI-sized)")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of tables")
    parser.add_argument("--profile", action="store_true",
                        help="record wall-clock and event counts into "
                             "BENCH_PERF.json")
    parser.add_argument("--loss", type=float, default=0.0, metavar="P",
                        help="inject per-frame loss probability P on "
                             "every link (reliable delivery engages "
                             "automatically)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        metavar="SEED",
                        help="seed for the deterministic fault streams "
                             "(same seed => identical fault schedule)")
    parser.add_argument("--chaos-scenario", default=None,
                        metavar="NAME",
                        help="pin every --chaos campaign to one "
                             "scenario (e.g. checkpoint-resume) "
                             "instead of the seeded rotation")
    parser.add_argument("--ckpt-profile", action="store_true",
                        help="measure window-checkpoint overhead on "
                             "the quick sharded suite and record the "
                             "'checkpoint' section of BENCH_PERF.json")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="run an 8-node fig5-style collective with "
                             "the flight recorder on and write a "
                             "Chrome/Perfetto trace-event JSON file")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the per-span-kind latency "
                             "breakdown of the fig2 point workload")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run one sharded (PDES) workload across N "
                             "shard processes and print its table")
    parser.add_argument("--shard-dims", default="4,8,8", metavar="DxDxD",
                        help="torus dims for --shards/--shard-scaling "
                             "(comma separated, default 4,8,8 = the "
                             "256-node fig4 mesh)")
    parser.add_argument("--shard-workload", default="aggregate",
                        choices=("pingpong", "collective", "aggregate"),
                        help="PDES workload for --shards/--shard-scaling")
    parser.add_argument("--shard-scaling", action="store_true",
                        help="profile the sharded engine at 1/2/4 "
                             "shards and record the 'sharded' section "
                             "of BENCH_PERF.json (implies --profile "
                             "output for that section)")
    parser.add_argument("--nic-collectives", action="store_true",
                        help="run the collective-tier crossover study "
                             "(host vs kernel vs nic) and record the "
                             "'nic_collectives' section of "
                             "BENCH_PERF.json")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the wall-clock telemetry plane, "
                             "drive the instrumented subsystems "
                             "(load test, sharded PDES, checkpoints) "
                             "and print the metrics report")
    parser.add_argument("--telemetry-trace", metavar="OUT.json",
                        default=None,
                        help="with --telemetry: write the unified "
                             "wall+sim Chrome/Perfetto trace")
    args = parser.parse_args(argv)
    if args.telemetry_trace and not args.telemetry:
        parser.error("--telemetry-trace requires --telemetry")
    if (not args.experiments and not args.chaos and not args.trace
            and not args.breakdown and not args.shards
            and not args.shard_scaling and not args.nic_collectives
            and not args.ckpt_profile and not args.telemetry):
        parser.error("name at least one experiment (or use --chaos N, "
                     "--trace OUT.json, --breakdown, --shards N, "
                     "--shard-scaling, --nic-collectives, "
                     "--ckpt-profile, --telemetry)")

    if args.telemetry:
        from repro.bench.telemetry import telemetry_report

        sys.stdout.write(telemetry_report(
            trace_path=args.telemetry_trace, quick=args.quick))
        if (not args.experiments and not args.chaos and not args.trace
                and not args.breakdown and not args.shards
                and not args.shard_scaling and not args.nic_collectives
                and not args.ckpt_profile):
            return 0

    if args.trace or args.breakdown:
        from repro.bench import observability as obs_bench

        if args.trace:
            sys.stdout.write(
                obs_bench.export_trace(args.trace, quick=args.quick)
            )
        if args.breakdown:
            sys.stdout.write(
                obs_bench.breakdown_report(quick=args.quick)
            )
        if not args.experiments and not args.chaos:
            return 0

    if args.shards or args.shard_scaling:
        from repro.pdes import run_sharded, shard_scaling_profile

        dims = tuple(int(d) for d in args.shard_dims.split(","))
        if args.shards:
            result = run_sharded(dims, workload=args.shard_workload,
                                 nshards=args.shards, processes=True)
            sys.stdout.write(
                f"[sharded {args.shard_workload} dims={dims} "
                f"nshards={result.nshards} windows={result.windows} "
                f"events={result.events_processed} "
                f"wall={result.wall_seconds:.2f}s]\n"
                f"{result.table}\n\n"
            )
        if args.shard_scaling:
            scaling = shard_scaling_profile(
                dims, workload=args.shard_workload)
            for count, entry in sorted(scaling["shards"].items(),
                                       key=lambda kv: int(kv[0])):
                sys.stdout.write(
                    f"[shard-scaling n={count}: "
                    f"{entry['wall_seconds']:.2f}s wall, "
                    f"{entry['events']} events, "
                    f"speedup x{entry['speedup_vs_baseline']}]\n"
                )
            sys.stdout.write(
                f"[shard-scaling tables identical: "
                f"{scaling['tables_identical']}]\n\n"
            )
            _merge_section("BENCH_PERF.json", "sharded", scaling)
        if (not args.experiments and not args.chaos and not args.trace
                and not args.breakdown and not args.nic_collectives):
            return 0

    if args.nic_collectives:
        from repro.bench.nic_collectives import run_study

        result, section = run_study(quick=args.quick)
        sys.stdout.write(result.csv() if args.csv else result.render())
        _merge_section("BENCH_PERF.json", "nic_collectives", section)
        if not args.experiments and not args.chaos:
            return 0

    if args.ckpt_profile:
        from repro.bench.ckpt import overhead_profile, render_profile

        section = overhead_profile()
        sys.stdout.write(render_profile(section))
        _merge_section("BENCH_PERF.json", "checkpoint", section)
        if not args.experiments and not args.chaos:
            return 0

    if args.chaos:
        from repro.bench.chaos import run_chaos
        from repro.hw import faults as fault_registry

        fault_registry.clear_registry()
        result = run_chaos(args.chaos, fault_seed=args.fault_seed,
                           scenario=args.chaos_scenario)
        sys.stdout.write(result.csv() if args.csv else result.render())
        fault_registry.clear_registry()
        if not args.experiments:
            return 0

    faulty = args.loss > 0.0
    if faulty:
        from repro.hw import faults

        faults.clear_registry()
        faults.set_ambient(faults.FaultParams(
            seed=args.fault_seed, loss_rate=args.loss,
        ))

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    profile = {}
    for name in names:
        from repro.sim import core as sim_core

        events_before = sim_core.TOTAL_EVENTS
        started = time.time()
        result = run_experiment(name, quick=args.quick)
        wall = time.time() - started
        output = result.csv() if args.csv else result.render()
        sys.stdout.write(output)
        sys.stdout.write(f"[{name}: {wall:.1f}s wall]\n\n")
        profile[name] = {
            "wall_s": round(wall, 3),
            "events": sim_core.TOTAL_EVENTS - events_before,
            "quick": args.quick,
        }
    if faulty:
        from repro.hw import faults

        totals = faults.injected_totals()
        injected = sum(totals.values())
        sys.stdout.write(
            f"[faults: seed={args.fault_seed} loss={args.loss} "
            f"injected={injected} "
            + " ".join(f"{k}={v}" for k, v in sorted(totals.items())
                       if v)
            + "]\n"
        )
        faults.set_ambient(None)
    if args.profile:
        from repro import fastpath

        mode = "fastpath_on" if fastpath.enabled() else "fastpath_off"
        _write_profile("BENCH_PERF.json", mode, profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
