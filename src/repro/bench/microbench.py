"""Reusable micro-benchmark drivers over the raw stacks.

These are the building blocks of the figure experiments: raw M-VIA and
TCP point-to-point latency/bandwidth, per-node aggregated bandwidth,
and MPI-level equivalents.  All return simulated microseconds / MB/s.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.builder import build_mesh
from repro.cluster.process_api import run_mpi
from repro.via.descriptors import RecvDescriptor, SendDescriptor

#: Cap on how many descriptors a raw-VIA benchmark pre-posts per VI.
MAX_PREPOST = 200


# ---------------------------------------------------------------------------
# Raw VIA plumbing.
# ---------------------------------------------------------------------------

def _via_pair(size_hint: int, hops: int = 1, **cluster_kwargs):
    """A connected VI pair ``hops`` apart on a line mesh."""
    cluster = build_mesh((hops + 1,), wrap=False, stack="via",
                         **cluster_kwargs)
    sim = cluster.sim
    d0, d1 = cluster.nodes[0].via, cluster.nodes[hops].via
    t0, t1 = d0.create_protection_tag(), d1.create_protection_tag()
    vi0, vi1 = d0.create_vi(t0), d1.create_vi(t1)
    r0 = d0.register_memory_now(size_hint + 4096, t0)
    r1 = d1.register_memory_now(size_hint + 4096, t1)
    a = sim.spawn(d0.agent.connect_request(vi0, hops, "bench"))
    b = sim.spawn(d1.agent.connect_wait(vi1, "bench"))
    sim.run_until_complete(a)
    sim.run_until_complete(b)
    return cluster, (vi0, r0), (vi1, r1)


def via_latency(nbytes: int = 4, repeats: int = 20, hops: int = 1,
                **cluster_kwargs) -> float:
    """Half round-trip time (us) at ``nbytes``, ``hops`` apart."""
    cluster, (vi0, r0), (vi1, r1) = _via_pair(max(nbytes, 4096), hops,
                                              **cluster_kwargs)
    sim = cluster.sim
    result: Dict[str, float] = {}

    def ponger():
        for _ in range(repeats):
            vi1.post_recv(RecvDescriptor(r1, 0, max(nbytes, 4096)))
            yield from vi1.recv_wait()
            yield from vi1.post_send(SendDescriptor(r1, 0, nbytes))

    def pinger():
        start = sim.now
        for _ in range(repeats):
            vi0.post_recv(RecvDescriptor(r0, 0, max(nbytes, 4096)))
            yield from vi0.post_send(SendDescriptor(r0, 0, nbytes))
            yield from vi0.recv_wait()
        result["rtt2"] = (sim.now - start) / repeats / 2

    sim.spawn(ponger())
    process = sim.spawn(pinger())
    sim.run_until_complete(process)
    return result["rtt2"]


def via_pingpong_bandwidth(nbytes: int, repeats: int = 6,
                           **cluster_kwargs) -> float:
    """Alternating-direction bandwidth (MB/s) at ``nbytes``."""
    cluster, (vi0, r0), (vi1, r1) = _via_pair(nbytes, **cluster_kwargs)
    sim = cluster.sim
    result: Dict[str, float] = {}

    def ponger():
        for _ in range(repeats):
            vi1.post_recv(RecvDescriptor(r1, 0, nbytes))
            yield from vi1.recv_wait()
            yield from vi1.post_send(SendDescriptor(r1, 0, nbytes))
            yield from vi1.send_wait()

    def pinger():
        start = sim.now
        for _ in range(repeats):
            vi0.post_recv(RecvDescriptor(r0, 0, nbytes))
            yield from vi0.post_send(SendDescriptor(r0, 0, nbytes))
            yield from vi0.send_wait()
            yield from vi0.recv_wait()
        # One-direction payload per round trip measured both ways.
        result["bw"] = 2 * repeats * nbytes / (sim.now - start)

    sim.spawn(ponger())
    process = sim.spawn(pinger())
    sim.run_until_complete(process)
    return result["bw"]


def via_simultaneous_bandwidth(nbytes: int, **cluster_kwargs) -> float:
    """Both directions at once: per-direction send bandwidth (MB/s)."""
    cluster, (vi0, r0), (vi1, r1) = _via_pair(nbytes, **cluster_kwargs)
    sim = cluster.sim
    start = sim.now
    finished: List[float] = []

    def pump(vi, region):
        vi.post_recv(RecvDescriptor(region, 0, nbytes))
        yield from vi.post_send(SendDescriptor(region, 0, nbytes))
        yield from vi.send_wait()
        yield from vi.recv_wait()
        finished.append(sim.now)

    processes = [sim.spawn(pump(vi0, r0)), sim.spawn(pump(vi1, r1))]
    for process in processes:
        sim.run_until_complete(process)
    return nbytes / (max(finished) - start)


def via_aggregate_bandwidth(dims: Tuple[int, ...], nbytes: int,
                            total_bytes: int = 6_000_000,
                            **cluster_kwargs) -> float:
    """Per-node aggregated *send* bandwidth (MB/s) on a small torus.

    All of a center node's links run simultaneous bidirectional
    traffic; the reported figure is the summed send bandwidth, as in
    the paper ("sending bandwidth alone not counting receiving data").
    """
    iters = min(max(3, total_bytes // max(nbytes, 1)), MAX_PREPOST)
    cluster = build_mesh(dims, wrap=True, stack="via", **cluster_kwargs)
    sim, torus = cluster.sim, cluster.torus
    center = cluster.nodes[0].via
    tag_c = center.create_protection_tag()
    reg_c = center.register_memory_now(nbytes + 4096, tag_c)
    pairs = []
    for index, (_direction, neighbor) in enumerate(torus.neighbors(0)):
        dev = cluster.nodes[neighbor].via
        tag_n = dev.create_protection_tag()
        reg_n = dev.register_memory_now(nbytes + 4096, tag_n)
        vi_c = center.create_vi(tag_c)
        vi_n = dev.create_vi(tag_n)
        a = sim.spawn(center.agent.connect_request(vi_c, neighbor,
                                                   f"agg{index}"))
        b = sim.spawn(dev.agent.connect_wait(vi_n, f"agg{index}"))
        sim.run_until_complete(a)
        sim.run_until_complete(b)
        for _ in range(iters):
            vi_c.post_recv(RecvDescriptor(reg_c, 0, nbytes))
            vi_n.post_recv(RecvDescriptor(reg_n, 0, nbytes))
        pairs.append((vi_c, vi_n, reg_n))
    start = sim.now
    finished: List[float] = []

    def sender(vi, region, mark: bool):
        for _ in range(iters):
            yield from vi.post_send(SendDescriptor(region, 0, nbytes))
            yield from vi.send_wait()
        if mark:
            finished.append(sim.now)

    def reaper(vi):
        for _ in range(iters):
            yield from vi.recv_wait()

    watch = []
    for vi_c, vi_n, reg_n in pairs:
        watch.append(sim.spawn(sender(vi_c, reg_c, True)))
        sim.spawn(sender(vi_n, reg_n, False))
        sim.spawn(reaper(vi_c))
        sim.spawn(reaper(vi_n))
    for process in watch:
        sim.run_until_complete(process)
    return len(pairs) * nbytes * iters / (max(finished) - start)


# ---------------------------------------------------------------------------
# TCP equivalents.
# ---------------------------------------------------------------------------

def _tcp_pair():
    cluster = build_mesh((2,), wrap=False, stack="tcp")
    return cluster, cluster.nodes[0].tcp, cluster.nodes[1].tcp


def tcp_latency(nbytes: int = 4, repeats: int = 20) -> float:
    cluster, s0, s1 = _tcp_pair()
    sim = cluster.sim
    result: Dict[str, float] = {}

    def server():
        sock = yield from s1.listen(7)
        for _ in range(repeats):
            yield from sock.recv(nbytes)
            yield from sock.send(nbytes)

    def client():
        sock = yield from s0.connect(1, 7)
        start = sim.now
        for _ in range(repeats):
            yield from sock.send(nbytes)
            yield from sock.recv(nbytes)
        result["rtt2"] = (sim.now - start) / repeats / 2

    sim.spawn(server())
    process = sim.spawn(client())
    sim.run_until_complete(process)
    return result["rtt2"]


def tcp_pingpong_bandwidth(nbytes: int, repeats: int = 6) -> float:
    cluster, s0, s1 = _tcp_pair()
    sim = cluster.sim
    result: Dict[str, float] = {}

    def server():
        sock = yield from s1.listen(7)
        for _ in range(repeats):
            yield from sock.recv(nbytes)
            yield from sock.send(nbytes)

    def client():
        sock = yield from s0.connect(1, 7)
        start = sim.now
        for _ in range(repeats):
            yield from sock.send(nbytes)
            yield from sock.recv(nbytes)
        result["bw"] = 2 * repeats * nbytes / (sim.now - start)

    sim.spawn(server())
    process = sim.spawn(client())
    sim.run_until_complete(process)
    return result["bw"]


def tcp_simultaneous_bandwidth(nbytes: int) -> float:
    cluster, s0, s1 = _tcp_pair()
    sim = cluster.sim
    times: Dict[str, float] = {}

    def node0():
        sock = yield from s0.connect(1, 7)
        times["start"] = sim.now
        yield from sock.send(nbytes)
        yield from sock.recv(nbytes)
        times["end0"] = sim.now

    def node1():
        sock = yield from s1.listen(7)
        yield from sock.send(nbytes)
        yield from sock.recv(nbytes)
        times["end1"] = sim.now

    a, b = sim.spawn(node0()), sim.spawn(node1())
    sim.run_until_complete(a)
    sim.run_until_complete(b)
    return nbytes / (max(times["end0"], times["end1"]) - times["start"])


def tcp_aggregate_bandwidth(dims: Tuple[int, ...], nbytes: int,
                            total_bytes: int = 4_000_000) -> float:
    """Per-node aggregated TCP send bandwidth on a small torus."""
    iters = min(max(2, total_bytes // max(nbytes, 1)), 64)
    cluster = build_mesh(dims, wrap=True, stack="tcp")
    sim, torus = cluster.sim, cluster.torus
    center = cluster.nodes[0].tcp
    sockets = []
    for index, (_direction, neighbor) in enumerate(torus.neighbors(0)):
        dev = cluster.nodes[neighbor].tcp
        holder: Dict[str, object] = {}

        def accept(dev=dev, index=index, holder=holder):
            holder["peer"] = yield from dev.listen(100 + index)

        def connect(neighbor=neighbor, index=index, holder=holder):
            holder["mine"] = yield from center.connect(neighbor,
                                                       100 + index)

        a, b = sim.spawn(accept()), sim.spawn(connect())
        sim.run_until_complete(a)
        sim.run_until_complete(b)
        sockets.append(holder)
    start = sim.now
    finished: List[float] = []

    def pump(sock, mark: bool):
        for _ in range(iters):
            yield from sock.send(nbytes)
        if mark:
            finished.append(sim.now)

    def drain(sock):
        for _ in range(iters):
            yield from sock.recv(nbytes)

    watch = []
    for holder in sockets:
        watch.append(sim.spawn(pump(holder["mine"], True)))
        sim.spawn(pump(holder["peer"], False))
        sim.spawn(drain(holder["mine"]))
        sim.spawn(drain(holder["peer"]))
    for process in watch:
        sim.run_until_complete(process)
    return len(sockets) * nbytes * iters / (max(finished) - start)


# ---------------------------------------------------------------------------
# MPI-level drivers (Figure 4).
# ---------------------------------------------------------------------------

def mpi_latency(nbytes: int = 4, repeats: int = 10) -> float:
    cluster = build_mesh((2,), wrap=False)
    result: Dict[str, float] = {}

    def program(comm):
        sim = comm.engine.sim
        if comm.rank == 0:
            start = sim.now
            for _ in range(repeats):
                yield from comm.send(1, tag=1, nbytes=nbytes)
                yield from comm.recv(source=1, tag=2,
                                     nbytes=max(nbytes, 4096))
            result["rtt2"] = (sim.now - start) / repeats / 2
        else:
            for _ in range(repeats):
                yield from comm.recv(source=0, tag=1,
                                     nbytes=max(nbytes, 4096))
                yield from comm.send(0, tag=2, nbytes=nbytes)

    run_mpi(cluster, program)
    return result["rtt2"]


def mpi_aggregate_bandwidth(dims: Tuple[int, ...], nbytes: int,
                            total_bytes: int = 6_000_000) -> float:
    """Aggregated send bandwidth through the MPI/QMP layer.

    Every node exchanges with all its neighbors simultaneously; the
    center node's summed send rate is reported.
    """
    iters = max(2, min(total_bytes // max(nbytes, 1), 96))
    cluster = build_mesh(dims, wrap=True)
    torus = cluster.torus
    result: Dict[str, float] = {}

    def program(comm):
        sim = comm.engine.sim
        neighbors = [n for _d, n in torus.neighbors(comm.rank)]
        yield from comm.barrier()
        start = sim.now
        recvs = []
        sends = []
        for _ in range(iters):
            for peer in neighbors:
                recvs.append(comm.irecv(peer, tag=3, nbytes=nbytes))
            send_batch = [
                comm.isend(peer, tag=3, nbytes=nbytes)
                for peer in neighbors
            ]
            sends.extend(send_batch)
            from repro.mpi.request import waitall
            yield from waitall(send_batch)
        if comm.rank == 0:
            result["send_done"] = sim.now - start
        from repro.mpi.request import waitall as _waitall
        yield from _waitall(recvs)

    run_mpi(cluster, program)
    nlinks = len(cluster.torus.neighbors(0))
    return nlinks * nbytes * iters / result["send_done"]
