"""Seeded chaos campaigns: node crashes under live MPI traffic.

``python -m repro.bench --chaos N --fault-seed S`` runs ``N``
campaigns.  Each campaign derives a per-campaign seed from ``S`` (CRC32
mixing, so campaign ``i`` of seed ``S`` is reproducible in isolation),
picks a victim rank and a crash instant, and runs a resilient SPMD
program — the canonical ULFM recovery pattern — over one of the
traffic scenarios below while the victim fail-stops mid-flight:

========== ===========================================================
scenario   traffic while the crash lands
========== ===========================================================
pt2pt      neighbor ping-pong rounds (eager and rendezvous sizes)
bcast      repeated whole-world broadcasts
allreduce  repeated global combines (the paper's dimensional exchange)
scatter    one-to-all personalized scatters (``opt`` scheduler)
allgather  all-to-all collection rounds
lqcd-cg    a CG-solver communication skeleton: halo exchanges with the
           six torus neighbors plus one global combine per iteration
nic-       NIC-resident collectives (``nic`` tier): allreduce rounds
collective with periodic broadcasts and barriers running entirely in
           the NIC firmware state machine
checkpoint a PDES crash-resume drill: kill one shard at a CRC32-seeded
-resume    window, recover from the window-boundary checkpoint log by
           replay, and assert the resumed output is bit-identical to
           an unperturbed reference run (see :mod:`repro.ckpt`)
========== ===========================================================

Every campaign asserts the full fault-tolerance contract:

* **no hang** — every rank's process finishes within the simulation
  limit (the watchdog would raise :class:`~repro.errors.HangError`
  first, with diagnostics);
* **failure visibility** — if the crash landed, the victim observes
  its own death and every survivor either finished its workload before
  the failure reached it or caught
  :class:`~repro.errors.MpiProcFailed` /
  :class:`~repro.errors.MpiRevoked` / :class:`~repro.errors.ViaError`;
* **shrink and continue** — the survivors revoke, agree, shrink to an
  identical survivor communicator, and complete a verification
  collective on it;
* **survivor exactly-once** — the post-shrink allreduce of ``1`` from
  every survivor must equal the shrunken size: each survivor counted
  exactly once, the dead rank zero times;
* **determinism** — the campaign is run twice and the full processed-
  event traces ``(time, name, kind)`` must be bit-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentResult
from repro.cluster.builder import build_mesh
from repro.cluster.process_api import build_world, run_mpi
from repro.errors import (
    BenchmarkError,
    MessagingError,
    MpiError,
    ViaError,
)
from repro.hw.faults import NodeFaultSpec
from repro.sim.monitor import Trace
from repro.topology.torus import Direction

#: Machine used by every campaign (the paper's 2x2x2 mesh).
MACHINE = (2, 2, 2)
#: Simulated-time budget per campaign (us); exceeding it is a hang.
LIMIT_US = 500_000.0
#: Crash instants are drawn from this window (us) so they land inside
#: the workload (setup ends ~60us; workloads run well past 500us).
CRASH_WINDOW = (80.0, 450.0)

_FAILURES = (MpiError, ViaError, MessagingError)


def _mix(seed: int, index: int, salt: str = "") -> int:
    """Deterministic per-campaign seed derivation."""
    return zlib.crc32(f"chaos:{seed}:{index}:{salt}".encode()) & 0x7FFFFFFF


def _rand(state: int) -> Tuple[int, int]:
    """One step of a tiny deterministic LCG (no ``random`` module so a
    campaign's draws can never be perturbed by library internals)."""
    state = (state * 1103515245 + 12345) & 0x7FFFFFFF
    return state, state >> 16


# -- traffic scenarios --------------------------------------------------------
def _wl_pt2pt(comm, rounds: int = 60):
    """Neighbor ping-pong: even ranks send first, odd ranks echo."""
    peer = comm.rank ^ 1
    for i in range(rounds):
        nbytes = 2048 if i % 3 else 32768  # mix eager and rendezvous
        if comm.rank % 2 == 0:
            yield from comm.isend(peer, i, nbytes).wait()
            yield from comm.irecv(peer, i, nbytes).wait()
        else:
            yield from comm.irecv(peer, i, nbytes).wait()
            yield from comm.isend(peer, i, nbytes).wait()


def _wl_bcast(comm, rounds: int = 25):
    for i in range(rounds):
        yield from comm.bcast(root=i % comm.size, nbytes=4096)


def _wl_allreduce(comm, rounds: int = 25):
    for _ in range(rounds):
        yield from comm.allreduce(nbytes=1024)


def _wl_scatter(comm, rounds: int = 25):
    for i in range(rounds):
        yield from comm.scatter(root=i % comm.size, nbytes=2048,
                                algorithm="opt")


def _wl_allgather(comm, rounds: int = 20):
    for _ in range(rounds):
        yield from comm.allgather(nbytes=1024)


def _wl_lqcd_cg(comm, iterations: int = 15):
    """The CG solver's per-iteration communication skeleton: six halo
    exchanges (one per torus direction) and one global combine."""
    torus = comm.torus
    halo_bytes = 4 * 4 * 4 * 24  # one 4^3 hypersurface of spinors
    for i in range(iterations):
        for axis in range(3):
            for sign in (+1, -1):
                dst = torus.neighbor(comm.rank, Direction(axis, sign))
                src = torus.neighbor(comm.rank, Direction(axis, -sign))
                send = comm.isend(dst, 100 * i + 10 * axis + (sign > 0),
                                  halo_bytes)
                recv = comm.irecv(src, 100 * i + 10 * axis + (sign > 0),
                                  halo_bytes)
                yield from send.wait()
                yield from recv.wait()
        yield from comm.allreduce(nbytes=8)  # residual norm


def _wl_nic_collective(comm, rounds: int = 40):
    """NIC-tier collectives under fire: the crash must surface through
    the NIC engine's fault path (dead-peer abort -> ULFM), not hang the
    firmware state machine."""
    comm.set_collective_tier("nic")
    try:
        for i in range(rounds):
            yield from comm.allreduce(nbytes=64,
                                      data=float(comm.rank + 1))
            if i % 5 == 0:
                yield from comm.bcast(root=i % comm.size, nbytes=256)
            if i % 7 == 0:
                yield from comm.barrier()
    finally:
        # The post-crash recovery collectives (agree/shrink/verify) run
        # on the shrunken communicator, which is host-tier by
        # construction — but reset this comm too for symmetry.
        comm.set_collective_tier("host")


_wl_nic_collective.needs_nic_engine = True

SCENARIOS: Dict[str, Callable] = {
    "pt2pt": _wl_pt2pt,
    "bcast": _wl_bcast,
    "allreduce": _wl_allreduce,
    "scatter": _wl_scatter,
    "allgather": _wl_allgather,
    "lqcd-cg": _wl_lqcd_cg,
    "nic-collective": _wl_nic_collective,
}

#: The shard-crash/resume drill (no node faults; PDES runs are
#: fault-free by construction, so it lives outside SCENARIOS).
CKPT_SCENARIO = "checkpoint-resume"

#: Campaign rotation: every traffic scenario plus the resume drill.
ALL_SCENARIOS = sorted(list(SCENARIOS) + [CKPT_SCENARIO])

#: Small fast sharded configs the resume drill draws from
#: (dims, nshards, workload); each completes in a few hundred windows.
_CKPT_CONFIGS = (
    ((2, 2, 2), 2, "collective"),
    ((4, 2, 2), 2, "aggregate"),
    ((3, 3), 3, "collective"),
    ((2, 2, 2), 2, "pingpong"),
)


# -- the resilient program ----------------------------------------------------
def _resilient(cluster, workload):
    """Wrap ``workload`` in the canonical ULFM recovery pattern.

    Both the failure path and the clean path converge on
    ``agree -> shrink -> verification allreduce`` so the agreement tree
    always spans every live rank (a rank that skipped ``agree`` would
    leave its tree peers waiting for a contribution).
    """

    def program(comm):
        sim = comm.engine.sim
        rank = comm.engine.rank
        failed_with: Optional[str] = None
        try:
            yield from workload(comm)
        except _FAILURES as exc:
            failed_with = type(exc).__name__
            if cluster.node_alive(rank):
                # Only survivors revoke: a dead process cannot reach
                # the out-of-band plane, and survivors must discover
                # the failure through the detector, not an oracle.
                comm.revoke()
        if not cluster.node_alive(rank):
            return {"verdict": "dead", "error": failed_with,
                    "time": sim.now}
        try:
            yield from comm.agree(failed_with is None)
            shrunk = yield from comm.shrink()
            # Survivor exactly-once: every member contributes 1 exactly
            # once; a ghost contribution (or a lost survivor) breaks
            # the sum.
            total = yield from shrunk.allreduce(nbytes=8, data=1)
            return {
                "verdict": "recovered" if failed_with else "clean",
                "error": failed_with,
                "size": shrunk.size,
                "ranks": tuple(shrunk.group.ranks()),
                "count": int(total),
                "time": sim.now,
            }
        except _FAILURES as exc:
            if not cluster.node_alive(rank):
                return {"verdict": "dead", "error": type(exc).__name__,
                        "time": sim.now}
            raise

    return program


# -- campaign driver ----------------------------------------------------------
@dataclass
class CampaignOutcome:
    """One campaign's parameters and measured results."""

    index: int
    scenario: str
    victim: int
    crash_at: float
    crash_landed: bool
    survivors: int
    finish_us: float
    trace_events: int
    deterministic: bool


def _run_once(scenario: str, victim: int, crash_at: float):
    """One traced execution; returns (results, trace, cluster)."""
    cluster = build_mesh(
        MACHINE, stack="via",
        node_faults=[NodeFaultSpec(rank=victim, crash_at=crash_at)],
    )
    cluster.sim.trace = Trace()
    comms = build_world(cluster)
    if getattr(SCENARIOS[scenario], "needs_nic_engine", False):
        for node in cluster.nodes:
            node.via.enable_nic_collectives()
    program = _resilient(cluster, SCENARIOS[scenario])
    results = run_mpi(cluster, program, comms=comms, limit=LIMIT_US)
    return results, cluster.sim.trace, cluster


def _run_checkpoint_resume(index: int, fault_seed: int) -> CampaignOutcome:
    """The ``checkpoint-resume`` drill: shard kill -> replay -> identity.

    Draws a sharded config, a victim shard, and a kill window from the
    campaign's CRC32-derived stream; runs an unperturbed reference,
    then the same run with the victim killed at the drawn window and
    recovered from the checkpoint log.  The recovered run must be
    bit-identical (table and per-rank results) and must have recovered
    exactly once; the determinism bit reruns the perturbed run.
    """
    from repro.pdes import CheckpointPolicy, run_sharded

    state = _mix(fault_seed, index, CKPT_SCENARIO)
    state, draw = _rand(state)
    dims, nshards, workload = _CKPT_CONFIGS[draw % len(_CKPT_CONFIGS)]
    reference = run_sharded(dims, workload=workload, nshards=nshards)
    state, draw = _rand(state)
    kill_window = draw % max(reference.windows, 1)
    state, draw = _rand(state)
    victim = draw % nshards
    label = (f"campaign {index} ({CKPT_SCENARIO}, shard {victim} "
             f"@ window {kill_window})")

    def perturbed_run():
        policy = CheckpointPolicy(every=16,
                                  chaos_kill=(victim, kill_window))
        return run_sharded(dims, workload=workload, nshards=nshards,
                           checkpoint=policy)

    perturbed = perturbed_run()
    if perturbed.recoveries != 1:
        raise BenchmarkError(
            f"{label}: expected exactly one shard recovery, got "
            f"{perturbed.recoveries}"
        )
    if repr(perturbed.table) != repr(reference.table) \
            or perturbed.per_rank != reference.per_rank \
            or perturbed.events_processed != reference.events_processed:
        raise BenchmarkError(
            f"{label}: resumed output differs from the unperturbed "
            f"reference"
        )
    second = perturbed_run()
    deterministic = (repr(second.table) == repr(perturbed.table)
                     and second.recoveries == 1
                     and second.windows == perturbed.windows)
    if not deterministic:
        raise BenchmarkError(f"{label}: differs across reruns")
    return CampaignOutcome(
        index=index, scenario=CKPT_SCENARIO, victim=victim,
        crash_at=float(kill_window), crash_landed=True,
        survivors=nshards, finish_us=round(perturbed.now, 1),
        trace_events=perturbed.events_processed,
        deterministic=deterministic,
    )


def run_campaign(index: int, fault_seed: int,
                 scenario: Optional[str] = None) -> CampaignOutcome:
    """Run (twice, for the determinism check) and verify one campaign."""
    scenario = scenario or ALL_SCENARIOS[index % len(ALL_SCENARIOS)]
    if scenario == CKPT_SCENARIO:
        return _run_checkpoint_resume(index, fault_seed)
    if scenario not in SCENARIOS:
        raise BenchmarkError(
            f"unknown chaos scenario {scenario!r}; choose from "
            f"{tuple(ALL_SCENARIOS)}"
        )
    state = _mix(fault_seed, index, scenario)
    size = MACHINE[0] * MACHINE[1] * MACHINE[2]
    state, draw = _rand(state)
    victim = 1 + draw % (size - 1)
    state, draw = _rand(state)
    lo, hi = CRASH_WINDOW
    crash_at = round(lo + (draw % 10_000) / 10_000.0 * (hi - lo), 1)

    results, trace, cluster = _run_once(scenario, victim, crash_at)
    label = f"campaign {index} ({scenario}, victim {victim} @ {crash_at}us)"

    # No hang: run_mpi returning at all (without HangError) proves every
    # rank finished; double-check nobody burned the whole budget.
    finish = cluster.sim.now
    if finish >= LIMIT_US:
        raise BenchmarkError(f"{label}: ran to the simulation limit")

    crash_landed = not cluster.node_alive(victim)
    survivors = [r for r in results
                 if isinstance(r, dict) and r["verdict"] != "dead"]
    if crash_landed:
        if results[victim]["verdict"] != "dead":
            raise BenchmarkError(
                f"{label}: victim finished as {results[victim]!r}"
            )
        expected = tuple(r for r in range(size) if r != victim)
        for res in survivors:
            if res["size"] != size - 1 or res["ranks"] != expected:
                raise BenchmarkError(
                    f"{label}: bad shrunken world {res!r}"
                )
            if res["count"] != size - 1:
                raise BenchmarkError(
                    f"{label}: exactly-once violated ({res['count']} "
                    f"contributions from {size - 1} survivors)"
                )
        if len(survivors) != size - 1:
            raise BenchmarkError(
                f"{label}: {len(survivors)} survivors of {size - 1}"
            )
    else:
        # Crash scheduled after everyone finished: all ranks clean.
        for res in results:
            if res["verdict"] == "dead":
                raise BenchmarkError(f"{label}: spurious death {res!r}")

    # Determinism: an identical second run must produce a bit-identical
    # event trace (times, names, kinds) and identical verdicts.
    results2, trace2, _cluster2 = _run_once(scenario, victim, crash_at)
    key = [(r.time, r.name, r.kind) for r in trace.records]
    key2 = [(r.time, r.name, r.kind) for r in trace2.records]
    deterministic = key == key2 and results == results2
    if not deterministic:
        raise BenchmarkError(f"{label}: trace differs across reruns")

    return CampaignOutcome(
        index=index, scenario=scenario, victim=victim, crash_at=crash_at,
        crash_landed=crash_landed, survivors=len(survivors),
        finish_us=round(finish, 1), trace_events=len(trace.records),
        deterministic=deterministic,
    )


def campaign_row(outcome: CampaignOutcome) -> List[Any]:
    """One summary-table row (the unit the service checkpoints)."""
    return [
        outcome.index, outcome.scenario, outcome.victim,
        outcome.crash_at,
        "crash" if outcome.crash_landed else "late",
        outcome.survivors, outcome.finish_us, outcome.trace_events,
        "yes" if outcome.deterministic else "NO",
    ]


def chaos_summary(rows: List[List[Any]],
                  fault_seed: int) -> ExperimentResult:
    """Assemble the summary table from per-campaign rows.

    Split out of :func:`run_chaos` so the service's resumable chaos
    jobs (:mod:`repro.ckpt.campaign`) can build a payload from a mix
    of freshly computed and checkpoint-loaded rows and still produce a
    bit-identical result.
    """
    landed = sum(1 for row in rows if row[4] == "crash")
    return ExperimentResult(
        experiment="chaos",
        title=f"Chaos campaigns (seed {fault_seed}): node crashes "
              f"under load",
        columns=["campaign", "scenario", "victim", "crash_at_us",
                 "fault", "survivors", "finish_us", "events",
                 "deterministic"],
        rows=rows,
        notes=[
            f"{len(rows)} campaigns, {landed} crashes landed; every "
            f"run finished (no hangs), survivors shrank and completed "
            f"an exactly-once verification collective, and each "
            f"campaign's event trace was bit-identical across reruns.",
        ],
    )


def run_chaos(campaigns: int, fault_seed: int = 0,
              scenario: Optional[str] = None) -> ExperimentResult:
    """The ``--chaos N`` entry point: N campaigns, one summary table.

    ``scenario`` pins every campaign to one scenario (the CI resume
    smoke runs ``--chaos-scenario checkpoint-resume``); the default
    rotates through :data:`ALL_SCENARIOS`.
    """
    rows = [campaign_row(run_campaign(index, fault_seed,
                                      scenario=scenario))
            for index in range(campaigns)]
    return chaos_summary(rows, fault_seed)
