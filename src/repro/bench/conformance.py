"""Programmatic conformance checks: the paper's claims as data.

Every qualitative claim EXPERIMENTS.md audits by hand is encoded here
as a checkable predicate over experiment results, so
``python -m repro.bench conformance`` (or the test suite) can verify
the whole reproduction in one pass and print a ✅/❌ report.

Each check names the claim, quotes where the paper makes it, and
evaluates against freshly-run (quick-mode by default) experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.bench.harness import ExperimentResult, run_experiment


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    experiment: str
    claim: str
    source: str
    check: Callable[[ExperimentResult], bool]


def _col(result: ExperimentResult, name: str) -> List[float]:
    return [v for v in result.column(name)
            if isinstance(v, (int, float)) and not math.isnan(v)]


CLAIMS: List[Claim] = [
    Claim(
        "fig2",
        "M-VIA small-message RTT/2 is ~18.5 us",
        "section 4.1: 'around 18.5us for messages of size smaller "
        "than 400 bytes'",
        lambda r: abs(r.rows[0][1] - 18.5) < 0.6,
    ),
    Claim(
        "fig2",
        "TCP latency is at least 30% above M-VIA at small sizes",
        "section 4.1: 'The latency of TCP is at least 30% higher'",
        lambda r: r.rows[0][2] >= 1.3 * r.rows[0][1],
    ),
    Claim(
        "fig2",
        "M-VIA simultaneous bandwidth approaches 110 MB/s and beats "
        "TCP by ~37%",
        "section 4.1",
        lambda r: (abs(_col(r, "via simul MB/s")[-1] - 110) < 5
                   and 1.2 < _col(r, "via simul MB/s")[-1]
                   / _col(r, "tcp simul MB/s")[-1] < 1.55),
    ),
    Claim(
        "fig2",
        "pingpong bandwidth is only marginally better for M-VIA",
        "section 4.1: 'marginally better results for the other type "
        "of bandwidth'",
        lambda r: 1.0 < _col(r, "via pp MB/s")[-1]
        / _col(r, "tcp pp MB/s")[-1] < 1.35,
    ),
    Claim(
        "fig3",
        "2-D aggregated bandwidth flattens around ~400 MB/s",
        "section 4.2: 'flattens off around 400 MB/s'",
        lambda r: 380 <= _col(r, "via 2-D")[-1] <= 480,
    ),
    Claim(
        "fig3",
        "3-D aggregate exceeds the 2-D plateau (the ~550 peak) and "
        "ends at or below its own peak",
        "section 4.2: 'peaks around 550 MB/s and eventually drops'",
        lambda r: (max(_col(r, "via 3-D")) > max(_col(r, "via 2-D"))
                   and _col(r, "via 3-D")[-1] <= max(_col(r, "via 3-D"))),
    ),
    Claim(
        "fig4",
        "MPI/QMP small-message latency ~18.5 us (small implementation "
        "overhead)",
        "section 5.1",
        lambda r: abs(_col(r, "RTT/2 us")[0] - 18.5) < 1.5,
    ),
    Claim(
        "fig4",
        "bandwidth jumps at the 16K eager->RMA switch",
        "section 5.1: 'the sudden jump in bandwidth values around "
        "16 Kbytes'",
        lambda r: _jump_at_16k(r),
    ),
    Claim(
        "fig5",
        "global sum takes roughly twice the broadcast",
        "section 5.2",
        lambda r: all(
            1.4 <= s / b <= 3.0
            for b, s in zip(_col(r, "broadcast us"),
                            _col(r, "global sum us"))
        ),
    ),
    Claim(
        "fig6",
        "OPT's step count equals the optimality bound max(T1, T2)",
        "section 5.2: 'Therefore, OPT is optimal'",
        lambda r: all(o == b for o, b in zip(r.column("OPT steps"),
                                             r.column("OPT bound"))),
    ),
    Claim(
        "fig6",
        "OPT dispatches faster than SDF everywhere",
        "section 5.2 / figure 6",
        lambda r: all(ratio > 1.2 for ratio in r.column("SDF/OPT")),
    ),
    Claim(
        "routing",
        "non-nearest-neighbor latency follows 18.5 + 12.5 (n-1) us",
        "section 5.1",
        lambda r: all(
            abs(got - want) < 0.8
            for got, want in zip(r.column("measured RTT/2"),
                                 r.column("paper model"))
        ),
    ),
    Claim(
        "table1",
        "Myrinet performs a little better per node; GigE grows with "
        "lattice size; GigE wins $/Mflops at the largest lattice",
        "section 6 / table 1",
        # Quick mode runs tiny 8-node machines where the smallest
        # lattice sits within noise of parity, so allow 3% there; the
        # largest row must show Myrinet's edge outright (and does on
        # the full 256-node configuration at every row).
        lambda r: (
            all(m >= 0.97 * g
                for m, g in zip(r.column("Myrinet Gflops"),
                                r.column("GigE Gflops")))
            and r.column("Myrinet Gflops")[-1]
            >= r.column("GigE Gflops")[-1]
            and r.column("GigE Gflops")
            == sorted(r.column("GigE Gflops"))
            and r.column("GigE $/Mflops")[-1]
            < r.column("Myrinet $/Mflops")[-1]
        ),
    ),
]


def _jump_at_16k(result: ExperimentResult) -> bool:
    rows = [
        (size, bw) for size, bw in zip(result.column("bytes"),
                                       result.column("3-D agg MB/s"))
        if isinstance(bw, float) and not math.isnan(bw)
    ]
    below = [bw for size, bw in rows if size < 16384]
    above = [bw for size, bw in rows if size >= 16384]
    return bool(below and above and above[0] > 1.2 * below[-1])


def run_conformance(quick: bool = True) -> ExperimentResult:
    """Evaluate every claim; returns a pass/fail table."""
    cache: Dict[str, ExperimentResult] = {}
    rows = []
    for claim in CLAIMS:
        if claim.experiment not in cache:
            cache[claim.experiment] = run_experiment(claim.experiment,
                                                     quick=quick)
        ok = bool(claim.check(cache[claim.experiment]))
        rows.append([claim.experiment,
                     "PASS" if ok else "FAIL",
                     claim.claim])
    return ExperimentResult(
        experiment="conformance",
        title="Paper-claim conformance report",
        columns=["experiment", "status", "claim"],
        rows=rows,
        notes=[f"{sum(1 for r in rows if r[1] == 'PASS')}/{len(rows)} "
               "claims hold"],
    )
